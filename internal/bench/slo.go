package bench

import (
	"fmt"

	"ncache/internal/passthru"
	"ncache/internal/sim"
	"ncache/internal/trace"
)

// SLOBudget bounds one traced configuration's read-latency profile: an
// absolute p99 ceiling plus per-layer caps on the share of total attributed
// time. The budgets act as a regression gate — a change that slows the data
// path or shifts time into the wrong layer (say, an extra copy inflating the
// server share) trips the gate even while throughput still looks healthy.
type SLOBudget struct {
	Mode passthru.Mode
	// MaxP99 is the read p99 ceiling.
	MaxP99 sim.Duration
	// MaxShare caps a layer's fraction (0..1) of total attributed latency.
	// Layers absent from the map are unbounded.
	MaxShare map[trace.Layer]float64
	// MinCount guards against a gate that "passes" because the window
	// measured almost nothing.
	MinCount uint64
}

// Fig5bSLOs are the budgets for the quick-scale fig5b CPU-bound all-hit
// point (16 KB reads, two NICs, quickOpts). Ceilings carry ~30% headroom
// over the calibrated steady state — original p99 2.25 ms with a 42.6%
// server share, ncache 1.27 ms at 39.4%, baseline 1.04 ms at 33.2% — so
// ordinary jitter passes while a copy regression or a mis-attributed layer
// does not.
var Fig5bSLOs = []SLOBudget{
	{
		Mode:     passthru.Original,
		MaxP99:   3 * sim.Millisecond,
		MinCount: 200,
		MaxShare: map[trace.Layer]float64{
			trace.LServer: 0.55,
			trace.LNet:    0.45,
			trace.LRPC:    0.25,
			trace.LFS:     0.25,
		},
	},
	{
		Mode:     passthru.NCache,
		MaxP99:   1700 * sim.Microsecond,
		MinCount: 400,
		MaxShare: map[trace.Layer]float64{
			trace.LServer: 0.52,
			trace.LNet:    0.45,
			trace.LRPC:    0.25,
			trace.LFS:     0.25,
		},
	},
	{
		Mode:     passthru.Baseline,
		MaxP99:   1400 * sim.Microsecond,
		MinCount: 500,
		MaxShare: map[trace.Layer]float64{
			trace.LServer: 0.45,
			trace.LNet:    0.47,
			trace.LRPC:    0.25,
			trace.LFS:     0.25,
		},
	},
}

// CheckSLO evaluates a traced point against a budget and returns the
// violations, empty when the point is within budget.
func CheckSLO(p NFSPoint, b SLOBudget) []string {
	var v []string
	if p.Lat == nil {
		return []string{"point carries no latency summary (run with Options.Latency)"}
	}
	var read *trace.OpSummary
	for i := range p.Lat.Ops {
		if p.Lat.Ops[i].Op == "read" {
			read = &p.Lat.Ops[i]
			break
		}
	}
	if read == nil {
		return []string{"no read op in latency summary"}
	}
	if read.Count < b.MinCount {
		v = append(v, fmt.Sprintf("only %d reads measured, want ≥%d", read.Count, b.MinCount))
	}
	if read.P99 > b.MaxP99 {
		v = append(v, fmt.Sprintf("read p99 %v exceeds budget %v", read.P99, b.MaxP99))
	}
	var total float64
	for _, ls := range read.Layers {
		total += float64(ls.Total)
	}
	if total <= 0 {
		return append(v, "no per-layer attribution recorded")
	}
	for _, ls := range read.Layers {
		max, ok := b.MaxShare[ls.Layer]
		if !ok {
			continue
		}
		if share := float64(ls.Total) / total; share > max {
			v = append(v, fmt.Sprintf("layer %v holds %.1f%% of read latency, budget %.1f%%",
				ls.Layer, 100*share, 100*max))
		}
	}
	return v
}
