package bench

import (
	"strings"
	"testing"

	"ncache/internal/passthru"
	"ncache/internal/sim"
	"ncache/internal/trace"
)

// TestLatencySLOGate is the regression gate: the quick-scale fig5b point
// must stay inside each configuration's p99 and per-layer-share budgets
// (Fig5bSLOs). A data-path slowdown or attribution shift fails here before
// it is visible in throughput.
func TestLatencySLOGate(t *testing.T) {
	opt := quickOpts()
	opt.Latency = true
	byMode := make(map[passthru.Mode]NFSPoint)
	for _, b := range Fig5bSLOs {
		p, err := runFig5Point(opt, b.Mode, 16, 2)
		if err != nil {
			t.Fatal(err)
		}
		byMode[b.Mode] = p
		for _, viol := range CheckSLO(p, b) {
			t.Errorf("%s: %s", b.Mode, viol)
		}
	}
	// The paper's ordering is itself an SLO: the network-centric cache must
	// not lose its latency advantage over the pass-through original.
	origP99 := byMode[passthru.Original].Lat.Ops[0].P99
	ncP99 := byMode[passthru.NCache].Lat.Ops[0].P99
	if ncP99 >= origP99 {
		t.Errorf("NCache read p99 %v no better than Original %v", ncP99, origP99)
	}
}

// TestCheckSLOViolations checks the gate actually trips: a synthetic point
// violating every budget dimension reports every violation.
func TestCheckSLOViolations(t *testing.T) {
	p := NFSPoint{Lat: &trace.Summary{Ops: []trace.OpSummary{{
		Op:    "read",
		Count: 10,
		P99:   5 * sim.Millisecond,
		Layers: []trace.LayerStat{
			{Layer: trace.LServer, Total: 90 * sim.Millisecond},
			{Layer: trace.LNet, Total: 10 * sim.Millisecond},
		},
	}}}}
	b := SLOBudget{
		MaxP99:   sim.Millisecond,
		MinCount: 100,
		MaxShare: map[trace.Layer]float64{trace.LServer: 0.5},
	}
	v := CheckSLO(p, b)
	if len(v) != 3 {
		t.Fatalf("violations = %v, want p99 + count + server share", v)
	}
	joined := strings.Join(v, "\n")
	for _, want := range []string{"p99", "reads measured", "server"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q in %q", want, joined)
		}
	}

	if v := CheckSLO(NFSPoint{}, b); len(v) != 1 || !strings.Contains(v[0], "no latency summary") {
		t.Errorf("untraced point: %v", v)
	}
}
