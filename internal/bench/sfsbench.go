package bench

import (
	"fmt"

	"ncache/internal/extfs"
	"ncache/internal/nfs"
	"ncache/internal/passthru"
	"ncache/internal/workload"
)

// Fig7RegularDataPcts is the x-axis of Figure 7: the percentage of NFS
// operations that access regular data.
var Fig7RegularDataPcts = []int{30, 45, 60, 75}

// sfsFileCount and sfsFileSize build the accessed file set: 10% of the
// paper's 2 GB file system ≈ 200 MB, spread over many files (scaled by
// Options.Scale).
const (
	sfsFileCount = 256
	sfsFileSize  = 800 * 1024 // 256 × 800 KB ≈ 200 MB at Scale=1
)

// RunFig7 reproduces Figure 7: SPECsfs-like throughput (ops/s) for the
// three configurations as the regular-data fraction of the op mix grows.
func RunFig7(opt Options) ([]SFSPoint, error) {
	opt = opt.withDefaults()
	var out []SFSPoint
	for _, mode := range Modes {
		for _, pct := range Fig7RegularDataPcts {
			p, err := runFig7Point(opt, mode, pct)
			if err != nil {
				return nil, fmt.Errorf("fig7 %s %d%%: %w", mode, pct, err)
			}
			out = append(out, p)
		}
	}
	return out, nil
}

func runFig7Point(opt Options, mode passthru.Mode, pct int) (SFSPoint, error) {
	fileSize := uint64(sfsFileSize / opt.Scale)
	fileSize -= fileSize % extfs.BlockSize
	if fileSize == 0 {
		fileSize = extfs.BlockSize
	}
	totalBlocks := int64(sfsFileCount) * int64(fileSize/extfs.BlockSize)

	// The SFS steady state is cache-resident (the accessed set is 10% of
	// the file system precisely so the server works from memory); the
	// peak-throughput point the paper reports is server-CPU-bound.
	cs := clusterSpec{
		mode:          mode,
		nics:          1,
		clients:       2,
		blocksPerDisk: totalBlocks/4 + 16384,
		fsCacheBlocks: int(totalBlocks) + 8192,
		ncacheBytes:   (int64(totalBlocks)*extfs.BlockSize*3)/2 + (64 << 20),
	}
	if mode == passthru.NCache {
		// Double-buffering control: small FS cache, NCache as L2.
		cs.fsCacheBlocks = 4096
	}
	var specs []extfs.FileSpec
	cl, err := cs.build(func(f *extfs.Formatter) error {
		for i := 0; i < sfsFileCount; i++ {
			spec, err := f.AddFile(fmt.Sprintf("sfs-%04d", i), fileSize, nil)
			if err != nil {
				return err
			}
			specs = append(specs, spec)
		}
		_, err := f.AddFile("scratch-marker", extfs.BlockSize, nil)
		return err
	})
	if err != nil {
		return SFSPoint{}, err
	}

	// Resolve handles through the protocol (warming directory metadata)
	// and prefill each file so the window starts from steady state.
	files := make([]workload.FileRef, 0, len(specs))
	for _, spec := range specs {
		fh, err := lookupFH(cl, 0, spec.Name)
		if err != nil {
			return SFSPoint{}, err
		}
		if err := prefill(cl, fh, spec.Size); err != nil {
			return SFSPoint{}, err
		}
		files = append(files, workload.FileRef{FH: fh, Size: spec.Size})
	}

	clients := make([]*nfs.Client, 0, len(cl.Clients))
	for _, h := range cl.Clients {
		clients = append(clients, h.NFS)
	}
	load := &workload.SFSLoad{
		Clients: clients,
		Cfg: workload.SFSConfig{
			RegularDataPct: pct,
			Files:          files,
			ScratchDir:     nfs.RootFH(),
			// The paper reports the sustained peak: drive the server
			// to its CPU limit.
			Concurrency: opt.Concurrency * 4,
		},
	}
	runner := &workload.Runner{Eng: cl.Eng, Warmup: opt.Warmup, Window: opt.Window}
	p := SFSPoint{Mode: mode, RegularDataPct: pct}
	m, err := runner.Run(load,
		func() { resetClusterStats(cl) },
		func() { p.ServerCPU = cl.App.Node.CPU.Utilization() })
	if err != nil {
		return SFSPoint{}, err
	}
	p.OpsPerSec = m.OpsPerSec()
	p.Errors = m.Errors
	return p, nil
}
