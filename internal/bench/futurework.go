package bench

import (
	"fmt"
	"strings"

	"ncache/internal/extfs"
	"ncache/internal/nfs"
	"ncache/internal/passthru"
	"ncache/internal/workload"
)

// WireFormatPoint is one point of the §6 future-work experiment.
type WireFormatPoint struct {
	Mode          passthru.Mode
	WireFormat    bool
	ThroughputMBs float64
	StorageCPU    float64
	ServerCPU     float64
}

// RunFutureWorkWireFormat evaluates the paper's §6 proposal — storing
// disk-resident data in a network-ready format so the *storage server* also
// avoids its copies — on the all-miss workload, where the storage CPU is
// the bottleneck for the zero-copy application-server configurations
// (Figure 4). Wire-format storage should lift exactly that ceiling.
func RunFutureWorkWireFormat(opt Options) ([]WireFormatPoint, error) {
	opt = opt.withDefaults()
	var out []WireFormatPoint
	for _, mode := range []passthru.Mode{passthru.Original, passthru.NCache} {
		for _, wf := range []bool{false, true} {
			p, err := runWireFormatPoint(opt, mode, wf)
			if err != nil {
				return nil, fmt.Errorf("futurework %s wf=%v: %w", mode, wf, err)
			}
			out = append(out, p)
		}
	}
	return out, nil
}

func runWireFormatPoint(opt Options, mode passthru.Mode, wireFormat bool) (WireFormatPoint, error) {
	const fileBlocks = 96 * 1024 // 384 MB, as Figure 4
	cs := clusterSpec{
		mode:          mode,
		nics:          1,
		clients:       2,
		blocksPerDisk: fileBlocks/4 + 8192,
		fsCacheBlocks: 8192,
		ncacheBytes:   64 << 20,
	}
	var spec extfs.FileSpec
	cl, err := cs.build(func(f *extfs.Formatter) error {
		var err error
		spec, err = f.AddFile("bigfile", uint64(fileBlocks)*extfs.BlockSize, nil)
		return err
	})
	if err != nil {
		return WireFormatPoint{}, err
	}
	cl.Storage.Target.WireFormat = wireFormat
	fh, err := lookupFH(cl, 0, "bigfile")
	if err != nil {
		return WireFormatPoint{}, err
	}
	clients := make([]*nfs.Client, 0, len(cl.Clients))
	for _, h := range cl.Clients {
		clients = append(clients, h.NFS)
	}
	load := &workload.NFSReadLoad{
		Clients:     clients,
		FH:          fh,
		FileSize:    spec.Size,
		RequestSize: 32 * 1024,
		Pattern:     workload.Sequential,
		Concurrency: opt.Concurrency,
	}
	runner := &workload.Runner{Eng: cl.Eng, Warmup: opt.Warmup, Window: opt.Window}
	p := WireFormatPoint{Mode: mode, WireFormat: wireFormat}
	m, err := runner.Run(load,
		func() { resetClusterStats(cl) },
		func() {
			p.StorageCPU = cl.Storage.Node.CPU.Utilization()
			p.ServerCPU = cl.App.Node.CPU.Utilization()
		})
	if err != nil {
		return WireFormatPoint{}, err
	}
	p.ThroughputMBs = m.Throughput() / 1e6
	return p, nil
}

// FormatWireFormatPoints renders the experiment.
func FormatWireFormatPoints(points []WireFormatPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Future work (§6): network-ready disk-resident format at the storage target\n")
	fmt.Fprintf(&b, "(all-miss, 32 KB — the configuration where the storage CPU is the ceiling)\n")
	fmt.Fprintf(&b, "%-10s %-12s %12s %9s %9s\n", "config", "storage", "MB/s", "srvCPU%", "stoCPU%")
	base := map[passthru.Mode]float64{}
	for _, p := range points {
		name := "classic"
		if p.WireFormat {
			name = "wire-format"
		}
		note := ""
		if !p.WireFormat {
			base[p.Mode] = p.ThroughputMBs
		} else if b0 := base[p.Mode]; b0 > 0 {
			note = fmt.Sprintf("  (%+.1f%%)", (p.ThroughputMBs/b0-1)*100)
		}
		fmt.Fprintf(&b, "%-10s %-12s %12.1f %9.1f %9.1f%s\n",
			p.Mode, name, p.ThroughputMBs, p.ServerCPU*100, p.StorageCPU*100, note)
	}
	return b.String()
}
