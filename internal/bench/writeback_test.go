package bench

import (
	"testing"
)

// TestWritebackBeatsSyncAtEqualDurability is the experiment's acceptance
// criterion: on the write-heavy SFS mix with acked-means-durable on both
// arms, the WAL + batched-flusher pipeline must out-run the synchronous
// apply+flush path, and its pipeline counters must show the machinery
// actually ran (group commits batching records, flushes batching blocks).
func TestWritebackBeatsSyncAtEqualDurability(t *testing.T) {
	pts, err := RunWriteback(quickOpts())
	if err != nil {
		t.Fatalf("RunWriteback: %v", err)
	}
	byArm := map[string]WritebackPoint{}
	for _, p := range pts {
		byArm[p.Arm] = p
		if p.Errors != 0 {
			t.Fatalf("%s arm saw %d errors", p.Arm, p.Errors)
		}
	}
	sync, wal := byArm["sync"], byArm["wal"]
	if sync.OpsPerSec <= 0 || wal.OpsPerSec <= 0 {
		t.Fatalf("degenerate points: %+v", pts)
	}
	if wal.OpsPerSec <= sync.OpsPerSec {
		t.Fatalf("write-back pipeline did not beat the sync path: wal %.0f ops/s vs sync %.0f",
			wal.OpsPerSec, sync.OpsPerSec)
	}
	if wal.WALCommits == 0 || wal.FlushBatches == 0 {
		t.Fatalf("wal arm ran without the pipeline: %+v", wal)
	}
	if wal.MeanCommitRecs < 1 || wal.MeanBatchBlocks < 1 {
		t.Fatalf("pipeline never batched: %.2f recs/commit, %.2f blocks/batch", wal.MeanCommitRecs, wal.MeanBatchBlocks)
	}
	if sync.WALCommits != 0 {
		t.Fatalf("sync arm journaled: %+v", sync)
	}
	t.Logf("sync %.0f ops/s vs wal %.0f ops/s (%+.1f%%), %.1f recs/commit, %.1f blocks/batch, %d stalls",
		sync.OpsPerSec, wal.OpsPerSec, gainPct(wal.OpsPerSec, sync.OpsPerSec),
		wal.MeanCommitRecs, wal.MeanBatchBlocks, wal.Stalls)
}

// TestWritebackSeedReplay: the fig-writeback experiment replays bit-for-bit
// at equal options on the classic engine.
func TestWritebackSeedReplay(t *testing.T) {
	opt := quickOpts()
	first, err := RunWriteback(opt)
	if err != nil {
		t.Fatalf("fig-writeback first run: %v", err)
	}
	second, err := RunWriteback(opt)
	if err != nil {
		t.Fatalf("fig-writeback second run: %v", err)
	}
	diffPoints(t, "fig-writeback", first, second)
}

// TestParallelReplayWriteback: the write-back pipeline — WAL group-commit
// timers, the batching flusher, watermark admission — runs on each server's
// own shard, so the fig-writeback points are bit-identical for any worker
// count.
func TestParallelReplayWriteback(t *testing.T) {
	runParallelSweep(t, "fig-writeback", parOpts(), func(o Options) (interface{}, error) {
		return RunWriteback(o)
	})
}
