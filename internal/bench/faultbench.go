package bench

import (
	"fmt"
	"strings"

	"ncache/internal/extfs"
	"ncache/internal/fault"
	"ncache/internal/nfs"
	"ncache/internal/passthru"
	"ncache/internal/workload"
)

// FaultScenarios is the degradation sweep of the fig-fault experiment: a
// fault-free baseline plus the three canonical schedules (fault.Presets).
var FaultScenarios = []string{"none", "frame-loss", "slow-disk", "cpu-burst"}

// FaultModes are the configurations the degradation table compares. Baseline
// is omitted: the paper's question is whether NCache's extra machinery makes
// the server more fragile than the Original pass-through under stress.
var FaultModes = []passthru.Mode{passthru.Original, passthru.NCache}

// FaultPoint is one (mode, scenario) cell of the degradation table.
type FaultPoint struct {
	Scenario string
	NFSPoint
}

// RunFigFault measures Original and NCache under identical fault schedules:
// the all-miss sequential-read workload (disk, network and CPU all on the
// critical path) at a fixed 16 KB request size, once fault-free and once per
// preset schedule, all replayed from opt.FaultSeed. Latency tracing is
// always on so each point carries per-layer fault attribution.
func RunFigFault(opt Options) ([]FaultPoint, error) {
	opt = opt.withDefaults()
	opt.Latency = true
	var out []FaultPoint
	for _, mode := range FaultModes {
		for _, sc := range FaultScenarios {
			o := opt
			if sc == "none" {
				o.FaultSpec = ""
			} else {
				o.FaultSpec = sc
			}
			p, err := runFaultPoint(o, mode)
			if err != nil {
				return nil, fmt.Errorf("fig-fault %s %s: %w", mode, sc, err)
			}
			out = append(out, FaultPoint{Scenario: sc, NFSPoint: p})
		}
	}
	return out, nil
}

// SweepRates are the frame-loss probabilities of the fig-fault-sweep
// experiment: a fault-free anchor plus a log-ish ramp through the regime
// where RPC retransmission starts dominating tail latency.
var SweepRates = []float64{0, 0.0005, 0.001, 0.002, 0.005, 0.01}

// SweepPoint is one (mode, drop rate) cell of the degradation curve.
type SweepPoint struct {
	DropRate float64
	NFSPoint
}

// RunFaultSweep measures the same all-miss read point as RunFigFault under a
// swept client-side frame-drop rate, for Original and NCache. The output
// feeds results/fig-fault.csv (degradation vs fault rate, one curve per
// configuration); every run replays from opt.FaultSeed.
func RunFaultSweep(opt Options) ([]SweepPoint, error) {
	opt = opt.withDefaults()
	opt.Latency = true
	var out []SweepPoint
	for _, mode := range FaultModes {
		for _, rate := range SweepRates {
			o := opt
			if rate > 0 {
				o.FaultSpec = fmt.Sprintf("drop:client*:rate=%g", rate)
			} else {
				o.FaultSpec = ""
			}
			p, err := runFaultPoint(o, mode)
			if err != nil {
				return nil, fmt.Errorf("fig-fault-sweep %s rate=%g: %w", mode, rate, err)
			}
			out = append(out, SweepPoint{DropRate: rate, NFSPoint: p})
		}
	}
	return out, nil
}

// FormatFaultSweepCSV renders the sweep as CSV for plotting: one row per
// (config, rate) with throughput, p99 and the recovery counters.
func FormatFaultSweepCSV(points []SweepPoint) string {
	var b strings.Builder
	b.WriteString("config,drop_rate,mb_per_s,ops_per_s,read_p99_us,retransmits,rpc_timeouts,dup_replies,errors\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%s,%g,%.1f,%.0f,%.1f,%d,%d,%d,%d\n",
			p.Mode, p.DropRate, p.ThroughputMBs, p.OpsPerSec, readP99(p.NFSPoint),
			p.Retransmits, p.RPCTimeouts, p.DupReplies, p.Errors)
	}
	return b.String()
}

// runFaultPoint is the fig4-style all-miss point the fault sweep perturbs.
func runFaultPoint(opt Options, mode passthru.Mode) (NFSPoint, error) {
	const reqKB = 16
	fileBlocks := int64(96*1024) / int64(opt.Scale)
	cs := clusterSpec{
		mode:          mode,
		nics:          1,
		clients:       2,
		blocksPerDisk: fileBlocks/4 + 8192,
		fsCacheBlocks: 8192,
		ncacheBytes:   64 << 20,
		faultSpec:     opt.FaultSpec,
		faultSeed:     opt.FaultSeed,
		workers:       opt.Workers,
	}
	var spec extfs.FileSpec
	cl, err := cs.build(func(f *extfs.Formatter) error {
		var err error
		spec, err = f.AddFile("bigfile", uint64(fileBlocks)*extfs.BlockSize, nil)
		return err
	})
	if err != nil {
		return NFSPoint{}, err
	}
	defer cl.Close()
	fh, err := lookupFH(cl, 0, "bigfile")
	if err != nil {
		return NFSPoint{}, err
	}
	clients := make([]*nfs.Client, 0, len(cl.Clients))
	for _, h := range cl.Clients {
		clients = append(clients, h.NFS)
	}
	load := &workload.NFSReadLoad{
		Clients:     clients,
		FH:          fh,
		FileSize:    spec.Size,
		RequestSize: reqKB * 1024,
		Pattern:     workload.Sequential,
		Concurrency: opt.Concurrency,
	}
	return runNFSLoad(cl, load, opt, reqKB)
}

// readP99 extracts the read operation's p99 latency from a traced point.
func readP99(p NFSPoint) float64 {
	if p.Lat == nil {
		return 0
	}
	for _, op := range p.Lat.Ops {
		if op.Op == "read" {
			return float64(op.P99) / 1e3 // µs
		}
	}
	return 0
}

// faultShare sums fault-attributed latency per layer for the read op,
// returning the two dominant entries as "layer=µs" strings.
func faultShare(p NFSPoint) string {
	if p.Lat == nil {
		return ""
	}
	for _, op := range p.Lat.Ops {
		if op.Op != "read" {
			continue
		}
		var parts []string
		for _, ls := range op.Layers {
			if ls.FaultCount == 0 {
				continue
			}
			perOp := float64(ls.Fault) / float64(op.Count) / 1e3
			parts = append(parts, fmt.Sprintf("%s=%d/%.1fµs", ls.Layer, ls.FaultCount, perOp))
		}
		return strings.Join(parts, " ")
	}
	return ""
}

// FormatFaultPoints renders the degradation table: throughput and read p99
// per scenario per mode, each scenario's slowdown relative to the same
// mode's fault-free run, recovery counters, and per-layer fault attribution
// (count/avg-injected-latency per affected request).
func FormatFaultPoints(points []FaultPoint) string {
	base := make(map[passthru.Mode]FaultPoint)
	for _, p := range points {
		if p.Scenario == "none" {
			base[p.Mode] = p
		}
	}
	var b strings.Builder
	b.WriteString("fig-fault: degradation under injected faults (all-miss 16KB read)\n")
	fmt.Fprintf(&b, "%-10s %-11s %9s %8s %10s %8s %7s %7s %6s %6s\n",
		"config", "fault", "MB/s", "vs none", "p99_µs", "vs none",
		"retrans", "iscsiR", "dupRx", "errs")
	for _, mode := range FaultModes {
		for _, p := range points {
			if p.Mode != mode {
				continue
			}
			tputRel, p99Rel := "", ""
			if bp, ok := base[mode]; ok && p.Scenario != "none" {
				tputRel = fmt.Sprintf("%+.1f%%", gainPct(p.ThroughputMBs, bp.ThroughputMBs))
				p99Rel = fmt.Sprintf("%+.1f%%", gainPct(readP99(p.NFSPoint), readP99(bp.NFSPoint)))
			}
			fmt.Fprintf(&b, "%-10s %-11s %9.1f %8s %10.1f %8s %7d %7d %6d %6d\n",
				mode, p.Scenario, p.ThroughputMBs, tputRel, readP99(p.NFSPoint), p99Rel,
				p.Retransmits, p.ISCSIRetries, p.DupReplies, p.Errors)
		}
	}
	b.WriteString("\nper-layer fault attribution (injections / avg injected+recovery latency per read):\n")
	for _, p := range points {
		if s := faultShare(p.NFSPoint); s != "" {
			fmt.Fprintf(&b, "  %-10s %-11s %s\n", p.Mode, p.Scenario, s)
		}
	}
	b.WriteString("\ninjected schedules:\n")
	for _, p := range points {
		if len(p.FaultReport) == 0 {
			continue
		}
		fmt.Fprintf(&b, " %s/%s:\n%s", p.Mode, p.Scenario, fault.FormatReport(p.FaultReport))
	}
	return b.String()
}
