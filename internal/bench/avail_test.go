package bench

import (
	"strings"
	"testing"
)

// TestAvailSmoke runs the fig-avail experiment at test scale and checks the
// availability invariants the figure exists to demonstrate: the mirror keeps
// serving through the arm outage with zero escaped client errors, the dead
// arm is ejected and later readmitted, and the dirty-region resync converges
// so the run ends fully replicated.
func TestAvailSmoke(t *testing.T) {
	opt := quickOpts()
	opt.FaultSeed = testFaultSeed(t)
	rep, err := RunAvail(opt)
	if err != nil {
		t.Fatalf("RunAvail: %v", err)
	}
	if rep.TotalErrors != 0 {
		t.Fatalf("client errors escaped the mirror: %d", rep.TotalErrors)
	}
	if rep.FinalVol.Ejections == 0 {
		t.Fatalf("outage never tripped the breaker: %s", rep.FinalVol)
	}
	if !rep.Resynced {
		t.Fatalf("mirror did not fully recover: states=%v vol=%s",
			rep.FinalStates, rep.FinalVol)
	}
	if rep.HealthyOps <= 0 || rep.OutageOps <= 0 {
		t.Fatalf("timeline has dead phases: healthy=%.0f outage=%.0f",
			rep.HealthyOps, rep.OutageOps)
	}
	if rep.OutageOps < rep.HealthyOps/2 {
		t.Fatalf("outage throughput below 50%% of healthy: %.0f vs %.0f",
			rep.OutageOps, rep.HealthyOps)
	}
	if len(rep.Policies) != len(AvailPolicies) {
		t.Fatalf("policy table incomplete: %+v", rep.Policies)
	}
	for _, p := range rep.Policies {
		if p.Errors != 0 {
			t.Fatalf("policy %s leaked client errors: %d", p.Policy, p.Errors)
		}
		if p.ThroughputMBs <= 0 {
			t.Fatalf("policy %s served nothing: %+v", p.Policy, p)
		}
	}
	out := FormatAvail(rep)
	for _, want := range []string{"fig-avail", "phase averages", "read-policy comparison"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatAvail missing %q:\n%s", want, out)
		}
	}
}

// TestParallelReplayAvail: the availability timeline — breaker transitions,
// probe scheduling, dirty-region resync and the policy comparison — replays
// bit-identically for any worker count.
func TestParallelReplayAvail(t *testing.T) {
	opt := parOpts()
	opt.FaultSeed = testFaultSeed(t)
	runParallelSweep(t, "fig-avail", opt, func(o Options) (interface{}, error) {
		return RunAvail(o)
	})
}
