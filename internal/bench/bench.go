// Package bench is the experiment harness: one runner per table and figure
// of the paper's evaluation (§5), each building a fresh simulated testbed,
// laying down its file set, driving the paper's workload through warm-up
// and a steady-state measurement window, and reporting the same quantities
// the paper plots.
package bench

import (
	"fmt"

	"ncache/internal/blockdev"
	"ncache/internal/extfs"
	"ncache/internal/fault"
	"ncache/internal/nfs"
	"ncache/internal/passthru"
	"ncache/internal/sim"
	"ncache/internal/simnet"
	"ncache/internal/trace"
	"ncache/internal/workload"
)

// Options tune experiment duration and scale. Zero values select defaults
// suitable for `go test -bench`; cmd/ncbench raises them for full runs.
type Options struct {
	// Warmup and Window bound the measured steady state (virtual time).
	Warmup sim.Duration
	Window sim.Duration
	// Concurrency is the number of outstanding requests per client host
	// (the paper tunes the NFS daemon count the same way).
	Concurrency int
	// Scale divides the paper's memory-hungry parameters (working sets,
	// cache sizes) to keep host memory bounded. 4 reproduces the curve
	// shapes at quarter scale; 1 is full scale.
	Scale int
	// Latency enables per-request span tracing: each NFS point carries a
	// latency-percentile summary with per-layer attribution.
	Latency bool
	// Chrome, when non-nil, retains every traced run's spans for a
	// combined chrome://tracing export. Implies Latency-style tracing.
	Chrome *trace.ChromeTrace
	// FaultSpec injects a deterministic fault schedule (fault.ParseSpec
	// grammar or a preset name) into every cluster the experiment builds;
	// FaultSeed selects the replayable streams (zero means seed 1).
	FaultSpec string
	FaultSeed uint64
	// Workers runs every cluster on the parallel discrete-event engine with
	// this many workers (one shard per node, conservative epoch sync).
	// 1 is the sequential oracle of the sharded semantics; 0 keeps the
	// classic single engine. Results are bit-identical across worker
	// counts >= 1; only wall-clock time changes.
	Workers int
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Warmup == 0 {
		o.Warmup = 150 * sim.Millisecond
	}
	if o.Window == 0 {
		o.Window = 600 * sim.Millisecond
	}
	if o.Concurrency == 0 {
		o.Concurrency = 8
	}
	if o.Scale == 0 {
		o.Scale = 4
	}
	return o
}

// Modes lists the three configurations every experiment compares.
var Modes = []passthru.Mode{passthru.Original, passthru.NCache, passthru.Baseline}

// NFSPoint is one measured point of an NFS experiment.
type NFSPoint struct {
	Mode          passthru.Mode
	ReqKB         int
	ThroughputMBs float64
	OpsPerSec     float64
	ServerCPU     float64 // 0..1
	StorageCPU    float64
	LinkUtil      float64 // server NIC transmit utilization (max across NICs)
	Errors        uint64
	// Lat is the measurement-window latency summary (Options.Latency).
	Lat *trace.Summary
	// Fault recovery activity over the whole run (zero without a spec):
	// RPC retransmissions, abandoned calls, suppressed duplicate replies,
	// iSCSI command retries, and the injector's per-schedule tallies.
	Retransmits  uint64
	RPCTimeouts  uint64
	DupReplies   uint64
	ISCSIRetries uint64
	// TCP loss recovery across all nodes (iSCSI always rides TCP; NFS does
	// when the run dials stream clients): segment retransmissions, RTO
	// firings and fast retransmits.
	TCPRetransmits uint64
	TCPRTOs        uint64
	TCPFastRtx     uint64
	FaultReport    []fault.ScheduleReport
}

// WebPoint is one measured point of a kHTTPd experiment.
type WebPoint struct {
	Mode          passthru.Mode
	ParamKB       int // request size (6b) or working set in MB (6a)
	ThroughputMBs float64
	OpsPerSec     float64
	ServerCPU     float64
	HitRatio      float64
	Errors        uint64
}

// SFSPoint is one measured point of the SFS experiment.
type SFSPoint struct {
	Mode           passthru.Mode
	RegularDataPct int
	OpsPerSec      float64
	ServerCPU      float64
	Errors         uint64
}

// synthContent is the deterministic block-content function used for
// storage-free multi-hundred-megabyte file sets.
func synthContent(lbn int64, dst []byte) {
	v := uint64(lbn)*0x9e3779b97f4a7c15 + 12345
	for i := 0; i < len(dst); i += 8 {
		v ^= v << 13
		v ^= v >> 7
		v ^= v << 17
		for j := 0; j < 8 && i+j < len(dst); j++ {
			dst[i+j] = byte(v >> (8 * j))
		}
	}
}

// buildCluster assembles a testbed with the given file layout.
type clusterSpec struct {
	mode passthru.Mode
	nics int
	// servers/targets grow the testbed into the scale-out cluster
	// (0 = the classic 1×1 testbed).
	servers       int
	targets       int
	rangeBlocks   int64
	clients       int
	blocksPerDisk int64
	fsCacheBlocks int
	ncacheBytes   int64
	disableRemap  bool
	web           bool
	// cost overrides the default calibration (ablations).
	cost simnet.CostProfile
	// faultSpec/faultSeed wire a disarmed injector into the testbed.
	faultSpec string
	faultSeed uint64
	// workers selects the parallel engine (see Options.Workers).
	workers int
	// arms replicates every target across mirror arms; armPolicy picks the
	// read arm (fig-avail).
	arms      int
	armPolicy string
	// writeback enables the asynchronous write-back pipeline on every
	// front-end server (fig-writeback).
	writeback passthru.WritebackConfig
	// clientLinkLatency slows the client access links below the fabric
	// floor (0 = fabric latency). On the parallel engine a longer client
	// link is free lookahead: client shards synchronize less often.
	clientLinkLatency sim.Duration
	// controlLinkLatency does the same for the control-plane node's link.
	controlLinkLatency sim.Duration
}

// build creates, formats and starts the cluster; layout adds files.
func (cs clusterSpec) build(layout func(*extfs.Formatter) error) (*passthru.Cluster, error) {
	cl, err := passthru.NewCluster(passthru.ClusterConfig{
		Mode:               cs.mode,
		ServerNICs:         cs.nics,
		NumServers:         cs.servers,
		NumTargets:         cs.targets,
		RangeBlocks:        cs.rangeBlocks,
		NumClients:         cs.clients,
		BlocksPerDisk:      cs.blocksPerDisk,
		FSCacheBlocks:      cs.fsCacheBlocks,
		NCacheBytes:        cs.ncacheBytes,
		DisableRemap:       cs.disableRemap,
		EnableWeb:          cs.web,
		Cost:               cs.cost,
		FaultSpec:          cs.faultSpec,
		FaultSeed:          cs.faultSeed,
		Workers:            cs.workers,
		Arms:               cs.arms,
		ArmPolicy:          cs.armPolicy,
		ClientLinkLatency:  cs.clientLinkLatency,
		ControlLinkLatency: cs.controlLinkLatency,
		Writeback:          cs.writeback,
	})
	if err != nil {
		return nil, err
	}
	cl.SetSynthesize(synthContent)
	fmtr, err := extfs.Format(cl.DirectAccess(), 8192)
	if err != nil {
		return nil, err
	}
	if layout != nil {
		if err := layout(fmtr); err != nil {
			return nil, err
		}
	}
	if err := fmtr.Flush(); err != nil {
		return nil, err
	}
	if err := cl.Start(); err != nil {
		return nil, err
	}
	return cl, nil
}

// resetClusterStats restarts all measurement windows at the current instant.
func resetClusterStats(cl *passthru.Cluster) {
	for _, app := range cl.Apps {
		app.Node.CPU.ResetStats()
		for _, nic := range app.Node.NICs() {
			nic.ResetStats()
		}
		if app.Cache != nil {
			app.Cache.Stats = app.Cache.Stats.Sub(app.Cache.Stats)
		}
	}
	for _, storage := range cl.Storages {
		storage.Node.CPU.ResetStats()
		for _, d := range storage.Array.Disks() {
			d.ResetStats()
		}
	}
	if cl.Control != nil {
		cl.Control.Node().CPU.ResetStats()
	}
}

// maxLinkUtil returns the highest transmit utilization across server NICs.
func maxLinkUtil(cl *passthru.Cluster) float64 {
	u := 0.0
	for _, app := range cl.Apps {
		for _, nic := range app.Node.NICs() {
			if v := nic.TxUtilization(); v > u {
				u = v
			}
		}
	}
	return u
}

// lookupFH resolves a file handle synchronously (engine-driving helper).
func lookupFH(cl *passthru.Cluster, host int, name string) (nfs.FH, error) {
	var fh nfs.FH
	var lerr error
	got := false
	cl.Clients[host].NFS.Lookup(nfs.RootFH(), name, func(h nfs.FH, _ nfs.Attr, err error) {
		fh, lerr, got = h, err, true
	})
	if err := cl.Eng.Run(); err != nil {
		return fh, err
	}
	if !got {
		return fh, fmt.Errorf("bench: lookup %q did not complete", name)
	}
	return fh, lerr
}

// diskModelFor lets experiments weaken/strengthen storage (unused hook kept
// for ablations).
var _ = blockdev.IDE2000

// prefill streams a file through the server once so the measured window
// starts from cache steady state (the paper's "repetitively access" loads
// run long enough to converge; the DES warms deterministically instead).
func prefill(cl *passthru.Cluster, fh nfs.FH, size uint64) error {
	const step = 32 * 1024
	tr := workload.GenSequentialRead(fh, size, step)
	if size%step != 0 {
		tr.Ops = append(tr.Ops, workload.TraceOp{
			Kind: workload.OpRead,
			Off:  size - size%step,
			Len:  int(size % step),
		})
	}
	done := false
	player := &workload.TracePlayer{
		Clients:     []*nfs.Client{cl.Clients[0].NFS},
		Trace:       tr,
		Concurrency: 4,
		Done:        func() { done = true },
	}
	player.Start()
	if err := cl.Eng.Run(); err != nil {
		return err
	}
	if !done {
		return fmt.Errorf("bench: prefill did not complete")
	}
	_, _, errs := player.Counters()
	if errs > 0 {
		return fmt.Errorf("bench: prefill saw %d errors", errs)
	}
	return nil
}

// runNFSLoad measures one NFS micro-benchmark point.
func runNFSLoad(cl *passthru.Cluster, load workload.Load, opt Options, reqKB int) (NFSPoint, error) {
	var tr *trace.Tracer
	if opt.Latency || opt.Chrome != nil {
		tr = trace.NewTracer(cl.Eng, fmt.Sprintf("%s/%dKB", cl.App.Mode, reqKB))
		tr.SetKeepSpans(opt.Chrome != nil)
		if st, ok := load.(interface{ SetTracer(*trace.Tracer) }); ok {
			st.SetTracer(tr)
		}
	}
	runner := &workload.Runner{Eng: cl.Eng, Warmup: opt.Warmup, Window: opt.Window}
	p := NFSPoint{Mode: cl.App.Mode, ReqKB: reqKB}
	// Injection starts with the load (setup above ran fault-free) and stops
	// before the drain, so in-flight recovery completes and the event loop
	// terminates.
	cl.Faults.Arm()
	m, err := runner.Run(load,
		func() {
			resetClusterStats(cl)
			tr.ResetStats()
		},
		func() {
			p.ServerCPU = cl.App.Node.CPU.Utilization()
			p.StorageCPU = cl.Storage.Node.CPU.Utilization()
			p.LinkUtil = maxLinkUtil(cl)
			// Freeze before the drain so late completions stay out of
			// the window's statistics.
			tr.Freeze()
			cl.Faults.Quiesce()
		})
	if err != nil {
		return NFSPoint{}, err
	}
	p.ThroughputMBs = m.Throughput() / 1e6
	p.OpsPerSec = m.OpsPerSec()
	p.Errors = m.Errors
	p.Lat = tr.Summary()
	if cl.Faults != nil {
		p.Retransmits, p.RPCTimeouts, p.DupReplies, p.ISCSIRetries = cl.FaultCounters()
		p.TCPRetransmits, p.TCPRTOs, p.TCPFastRtx, _, _ = cl.TCPCounters()
		p.FaultReport = cl.Faults.Report()
	}
	opt.Chrome.Add(tr)
	return p, nil
}
