package bench

import (
	"fmt"
	"runtime"
	"testing"
)

// parallelWorkerCounts is the sweep each experiment replays under: the
// sharded sequential oracle (Workers=1) against 2, 4 and GOMAXPROCS
// workers, deduplicated. Workers=0 (the legacy single engine) is a
// different schedule by design and is covered by the seed-replay tests.
func parallelWorkerCounts() []int {
	counts := []int{2, 4}
	if n := runtime.GOMAXPROCS(0); n != 2 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

// parOpts is quickOpts at a shorter window: the equality being checked is
// bit-exactness across worker counts, which a 40 ms window exercises as
// thoroughly as an 80 ms one at half the wall-clock.
func parOpts() Options {
	opt := quickOpts()
	opt.Warmup = opt.Warmup / 2
	opt.Window = opt.Window / 2
	return opt
}

// runParallelSweep runs one experiment at Workers=1 and then at each
// parallelWorkerCounts entry, requiring byte-identical captures — counters,
// rates, and (where the experiment traces) latency summaries with their
// full histograms, via diffPoints' reflect.DeepEqual.
func runParallelSweep(t *testing.T, what string, opt Options,
	run func(Options) (interface{}, error)) {
	t.Helper()
	opt.Workers = 1
	want, err := run(opt)
	if err != nil {
		t.Fatalf("%s workers=1: %v", what, err)
	}
	for _, w := range parallelWorkerCounts() {
		opt.Workers = w
		got, err := run(opt)
		if err != nil {
			t.Fatalf("%s workers=%d: %v", what, w, err)
		}
		diffPoints(t, fmt.Sprintf("%s workers=%d vs workers=1", what, w), want, got)
	}
}

// TestParallelReplayFig5b: the Figure 5(b) sweep — every mode and request
// size, with latency tracing on so the per-op histograms are part of the
// comparison — is identical for any worker count.
func TestParallelReplayFig5b(t *testing.T) {
	opt := parOpts()
	opt.Latency = true
	runParallelSweep(t, "fig5b", opt, func(o Options) (interface{}, error) {
		return RunFig5b(o)
	})
}

// TestParallelReplayFigFault: the degradation table replays identically
// across worker counts under every fault scenario — the per-site injector
// streams, recovery machinery and per-layer fault attribution included.
// NCACHE_FAULT_SEED extends this to the CI seed matrix.
func TestParallelReplayFigFault(t *testing.T) {
	opt := parOpts()
	opt.Latency = true
	opt.FaultSeed = testFaultSeed(t)
	runParallelSweep(t, "fig-fault", opt, func(o Options) (interface{}, error) {
		return RunFigFault(o)
	})
}

// TestParallelReplayTransport: the UDP/TCP comparison under injected frame
// loss — TCP RTO/fast-retransmit and datagram-RPC retransmission counts are
// part of the compared points — is worker-count invariant.
func TestParallelReplayTransport(t *testing.T) {
	opt := parOpts()
	opt.FaultSpec = "frame-loss"
	opt.FaultSeed = testFaultSeed(t)
	runParallelSweep(t, "transport", opt, func(o Options) (interface{}, error) {
		return RunTransportComparison(o)
	})
}

// TestParallelReplayScaleout: the scale-out run — routed clients, control
// plane, background flushers and remap traffic across many nodes — is the
// largest shard graph in the suite and must stay worker-count invariant.
func TestParallelReplayScaleout(t *testing.T) {
	opt := parOpts()
	runParallelSweep(t, "scaleout", opt, func(o Options) (interface{}, error) {
		return RunScaleoutCounts(o, []int{2}, ScaleoutTargets)
	})
}

// TestParallelReplayScaleoutFaulted extends the scale-out invariance to the
// fault-injected regime of the acceptance criterion: frame loss on the
// client links with RPC retransmission enabled.
func TestParallelReplayScaleoutFaulted(t *testing.T) {
	opt := parOpts()
	opt.FaultSpec = "frame-loss"
	opt.FaultSeed = testFaultSeed(t)
	runParallelSweep(t, "scaleout under frame-loss", opt, func(o Options) (interface{}, error) {
		return RunScaleoutCounts(o, []int{2}, ScaleoutTargets)
	})
}
