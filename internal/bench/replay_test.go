package bench

import (
	"reflect"
	"testing"
)

// The registered-receive ingress path is the only ingress path; what the
// removed legacy-differential tests used to check is now expressed directly
// as seed replay: rebuilding and rerunning an experiment at identical
// options must reproduce every simulated quantity bit-for-bit — throughput,
// CPU, link utilization, latency summaries, fault-recovery and TCP
// loss-recovery counters. Any hidden host-side state (map iteration, pool
// reuse order, RX-ring adoption) that leaked into simulated results would
// diverge here.

// diffPoints fails the test if two point slices are not exactly equal.
func diffPoints(t *testing.T, what string, first, second interface{}) {
	t.Helper()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("%s: rerun diverged from first run at equal options\nfirst:  %+v\nsecond: %+v",
			what, first, second)
	}
}

func TestSeedReplayFig5b(t *testing.T) {
	opt := quickOpts()
	first, err := RunFig5b(opt)
	if err != nil {
		t.Fatalf("fig5b first run: %v", err)
	}
	second, err := RunFig5b(opt)
	if err != nil {
		t.Fatalf("fig5b second run: %v", err)
	}
	diffPoints(t, "fig5b", first, second)
}

func TestSeedReplayFigFault(t *testing.T) {
	opt := faultOpts(t, "") // RunFigFault installs its own scenario specs
	first, err := RunFigFault(opt)
	if err != nil {
		t.Fatalf("fig-fault first run: %v", err)
	}
	second, err := RunFigFault(opt)
	if err != nil {
		t.Fatalf("fig-fault second run: %v", err)
	}
	diffPoints(t, "fig-fault", first, second)
}
