package bench

import (
	"fmt"
	"strings"

	"ncache/internal/extfs"
	"ncache/internal/netbuf"
	"ncache/internal/nfs"
	"ncache/internal/passthru"
)

// Table1Row is one line of the kernel-modification inventory.
type Table1Row struct {
	Module   string
	Paper    string
	ThisRepo string
}

// Table1 reproduces Table 1: the modification surface of the NCache
// integration. The paper counts lines of C changed in Linux; here the
// analogous quantity is the set of hook points the assembly installs — the
// server daemons and the buffer cache remain untouched in both.
func Table1() []Table1Row {
	return []Table1Row{
		{
			Module:   "NFS/Web server daemon",
			Paper:    "None",
			ThisRepo: "None (nfs.Server / passthru.WebServer are mode-oblivious)",
		},
		{
			Module:   "buffer cache",
			Paper:    "None",
			ThisRepo: "None (buffercache moves lkey markers mechanically)",
		},
		{
			Module:   "iSCSI initiator",
			Paper:    "two functions invoking socket interface changed",
			ThisRepo: "two hooks: Initiator.SetReadHook + SetWriteHook (plus the §3.4 L2 read cache)",
		},
		{
			Module:   "network stack",
			Paper:    "TCP/IP socket interfaces extended",
			ThisRepo: "zero-copy SendChain on udp.Transport / tcp.Conn + nfs.Server.SetTxFilter",
		},
	}
}

// Table2Row is one measured line of the copies-per-request table.
type Table2Row struct {
	Server string
	Path   string
	Copies uint64
	Want   uint64 // the paper's count
}

// Table2 measures the number of physical copy operations per request on the
// Original configuration's four NFS paths and two kHTTPd paths, reproducing
// Table 2. Metadata is warmed first so the deltas are pure data path.
func Table2() ([]Table2Row, error) {
	cl, err := passthru.NewCluster(passthru.ClusterConfig{
		Mode:          passthru.Original,
		NumClients:    1,
		BlocksPerDisk: 16 * 1024,
		EnableWeb:     true,
	})
	if err != nil {
		return nil, err
	}
	fmtr, err := extfs.Format(cl.Storage.Array, 512)
	if err != nil {
		return nil, err
	}
	if _, err := fmtr.AddFile("t2file", 64*extfs.BlockSize, nil); err != nil {
		return nil, err
	}
	if err := fmtr.Flush(); err != nil {
		return nil, err
	}
	cl.Storage.Array.SetSynthesize(synthContent)
	if err := cl.Start(); err != nil {
		return nil, err
	}
	fh, err := lookupFH(cl, 0, "t2file")
	if err != nil {
		return nil, err
	}
	node := cl.App.Node
	client := cl.Clients[0].NFS

	read := func(off uint64) error {
		var rerr error
		fin := false
		client.Read(fh, off, extfs.BlockSize, func(c *netbuf.Chain, _ nfs.Attr, err error) {
			rerr, fin = err, true
			if c != nil {
				c.Release()
			}
		})
		if err := cl.Eng.Run(); err != nil {
			return err
		}
		if !fin {
			return fmt.Errorf("read did not complete")
		}
		return rerr
	}
	write := func(off uint64) error {
		var werr error
		fin := false
		client.WriteBytes(fh, off, make([]byte, extfs.BlockSize), func(_ int, _ nfs.Attr, err error) {
			werr, fin = err, true
		})
		if err := cl.Eng.Run(); err != nil {
			return err
		}
		if !fin {
			return fmt.Errorf("write did not complete")
		}
		return werr
	}

	// Warm metadata (root inode, file inode) with a probe read of block 0.
	if err := read(0); err != nil {
		return nil, err
	}

	var rows []Table2Row
	delta := func(name string, want uint64, op func() error) error {
		before := node.Copies
		if err := op(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		d := node.Copies.Sub(before)
		rows = append(rows, Table2Row{Server: "NFS server", Path: name, Copies: d.PhysicalOps, Want: want})
		return nil
	}

	// Read miss / hit (direct blocks only, so no metadata I/O pollutes).
	if err := delta("read miss", 3, func() error { return read(8 * extfs.BlockSize) }); err != nil {
		return nil, err
	}
	if err := delta("read hit", 2, func() error { return read(8 * extfs.BlockSize) }); err != nil {
		return nil, err
	}
	// Write overwritten (dirty block rewritten, never flushed): both
	// writes cost 1 copy each; report the second (the overwrite).
	if err := write(5 * extfs.BlockSize); err != nil {
		return nil, err
	}
	if err := delta("write overwritten", 1, func() error { return write(5 * extfs.BlockSize) }); err != nil {
		return nil, err
	}
	// Write flushed: one write then a sync; total copies across both
	// stages is 2 (Table 2 counts the cumulative journey).
	before := node.Copies
	if err := write(6 * extfs.BlockSize); err != nil {
		return nil, err
	}
	syncDone := false
	cl.App.FS.Sync(func(err error) { syncDone = err == nil })
	if err := cl.Eng.Run(); err != nil {
		return nil, err
	}
	if !syncDone {
		return nil, fmt.Errorf("sync failed")
	}
	d := node.Copies.Sub(before)
	// The sync also flushes block 5 (the overwritten one); subtract its
	// single flush copy to isolate one write+flush journey.
	rows = append(rows, Table2Row{Server: "NFS server", Path: "write flushed", Copies: d.PhysicalOps - 1, Want: 2})

	// kHTTPd: one-copy sendfile path. Use a fresh single-block page.
	webRows, err := table2Web()
	if err != nil {
		return nil, err
	}
	rows = append(rows, webRows...)
	return rows, nil
}

// table2Web measures the kHTTPd read paths on a fresh cluster.
func table2Web() ([]Table2Row, error) {
	cl, err := passthru.NewCluster(passthru.ClusterConfig{
		Mode:          passthru.Original,
		NumClients:    1,
		BlocksPerDisk: 16 * 1024,
		EnableWeb:     true,
	})
	if err != nil {
		return nil, err
	}
	fmtr, err := extfs.Format(cl.Storage.Array, 512)
	if err != nil {
		return nil, err
	}
	// Two one-block pages: one to warm metadata, one to measure.
	if _, err := fmtr.AddFile("warm.html", extfs.BlockSize, nil); err != nil {
		return nil, err
	}
	if _, err := fmtr.AddFile("page.html", extfs.BlockSize, nil); err != nil {
		return nil, err
	}
	if err := fmtr.Flush(); err != nil {
		return nil, err
	}
	cl.Storage.Array.SetSynthesize(synthContent)
	if err := cl.Start(); err != nil {
		return nil, err
	}
	var conn *passthru.HTTPConn
	cl.Clients[0].DialHTTP(passthru.ServerAddr, func(h *passthru.HTTPConn, err error) { conn = h })
	if err := cl.Eng.Run(); err != nil {
		return nil, err
	}
	if conn == nil {
		return nil, fmt.Errorf("web dial failed")
	}
	get := func(page string) error {
		fin := false
		var gerr error
		conn.Get(page, func(n int, err error) { gerr, fin = err, true })
		if err := cl.Eng.Run(); err != nil {
			return err
		}
		if !fin {
			return fmt.Errorf("GET %s did not complete", page)
		}
		return gerr
	}
	if err := get("warm.html"); err != nil { // warms root dir + metadata
		return nil, err
	}
	node := cl.App.Node
	var rows []Table2Row
	before := node.Copies
	if err := get("page.html"); err != nil {
		return nil, err
	}
	d := node.Copies.Sub(before)
	rows = append(rows, Table2Row{Server: "kHTTPd", Path: "read miss", Copies: d.PhysicalOps, Want: 2})
	before = node.Copies
	if err := get("page.html"); err != nil {
		return nil, err
	}
	d = node.Copies.Sub(before)
	rows = append(rows, Table2Row{Server: "kHTTPd", Path: "read hit", Copies: d.PhysicalOps, Want: 1})
	return rows, nil
}

// FormatTable1 renders Table 1.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: modifications required for NCache integration\n")
	fmt.Fprintf(&b, "%-24s | %-45s | %s\n", "Module", "Paper (Linux)", "This reproduction")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 120))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s | %-45s | %s\n", r.Module, r.Paper, r.ThisRepo)
	}
	return b.String()
}

// FormatTable2 renders Table 2 with pass/fail against the paper's counts.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: physical data copies per request (Original configuration)\n")
	fmt.Fprintf(&b, "%-12s %-18s %8s %8s %s\n", "Server", "Path", "Measured", "Paper", "Match")
	for _, r := range rows {
		match := "ok"
		if r.Copies != r.Want {
			match = "MISMATCH"
		}
		fmt.Fprintf(&b, "%-12s %-18s %8d %8d %s\n", r.Server, r.Path, r.Copies, r.Want, match)
	}
	return b.String()
}
