package bench

import (
	"strings"
	"testing"

	"ncache/internal/passthru"
	"ncache/internal/trace"
)

// TestTracingDoesNotPerturbResults checks the zero-cost-when-disabled and
// observer-only-when-enabled guarantees: the same experiment run with and
// without tracing produces identical throughput and op counts.
func TestTracingDoesNotPerturbResults(t *testing.T) {
	opt := quickOpts()
	plain, err := runFig5Point(opt, passthru.NCache, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	opt.Latency = true
	traced, err := runFig5Point(opt, passthru.NCache, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if plain.ThroughputMBs != traced.ThroughputMBs || plain.OpsPerSec != traced.OpsPerSec {
		t.Fatalf("tracing changed results: %.3f MB/s %.1f ops/s vs %.3f MB/s %.1f ops/s",
			plain.ThroughputMBs, plain.OpsPerSec, traced.ThroughputMBs, traced.OpsPerSec)
	}
	if plain.Lat != nil {
		t.Fatal("untraced point carries a latency summary")
	}
	if traced.Lat == nil {
		t.Fatal("traced point is missing its latency summary")
	}
}

// TestLatencySummaryInvariants runs a traced point and checks the summary:
// spans were recorded, percentiles are ordered, every request's per-layer
// attribution summed to its end-to-end duration, and the timeline spreads
// across more than one layer.
func TestLatencySummaryInvariants(t *testing.T) {
	opt := quickOpts()
	opt.Latency = true
	for _, mode := range []passthru.Mode{passthru.Original, passthru.NCache} {
		p, err := runFig5Point(opt, mode, 16, 2)
		if err != nil {
			t.Fatal(err)
		}
		sum := p.Lat
		if sum == nil || len(sum.Ops) != 1 || sum.Ops[0].Op != "read" {
			t.Fatalf("%s: summary = %+v", mode, sum)
		}
		if sum.AttrErrors != 0 {
			t.Fatalf("%s: %d attribution errors", mode, sum.AttrErrors)
		}
		op := sum.Ops[0]
		if op.Count == 0 {
			t.Fatalf("%s: no spans in window", mode)
		}
		if !(op.P50 <= op.P90 && op.P90 <= op.P99 && op.P99 <= op.P999 && op.P999 <= op.Max) {
			t.Fatalf("%s: percentiles out of order: %+v", mode, op)
		}
		layersUsed := 0
		for _, ls := range op.Layers {
			if ls.Total > 0 {
				layersUsed++
			}
		}
		if layersUsed < 3 {
			t.Fatalf("%s: latency attributed to only %d layers", mode, layersUsed)
		}
	}
}

// TestLatencyDeterminism checks the same traced run twice produces
// byte-identical summaries (same seed, same virtual clock, same trace).
func TestLatencyDeterminism(t *testing.T) {
	opt := quickOpts()
	opt.Latency = true
	a, err := runFig5Point(opt, passthru.NCache, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runFig5Point(opt, passthru.NCache, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	fa := FormatLatency("x", []NFSPoint{a})
	fb := FormatLatency("x", []NFSPoint{b})
	if fa != fb {
		t.Fatalf("traced runs diverged:\n%s\nvs\n%s", fa, fb)
	}
	if a.Lat.Ops[0].Count != b.Lat.Ops[0].Count {
		t.Fatalf("span counts differ: %d vs %d", a.Lat.Ops[0].Count, b.Lat.Ops[0].Count)
	}
}

// TestChromeExportFromBench runs a small traced point with span retention
// and checks the Chrome exporter produces a non-trivial document.
func TestChromeExportFromBench(t *testing.T) {
	opt := quickOpts()
	opt.Chrome = trace.NewChromeTrace()
	p, err := runFig5Point(opt, passthru.NCache, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Lat == nil || p.Lat.Ops[0].Count == 0 {
		t.Fatal("chrome tracing must also produce a latency summary")
	}
	var b strings.Builder
	if _, err := opt.Chrome.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "\"traceEvents\"") || !strings.Contains(out, "ncache/16KB") {
		t.Fatalf("unexpected chrome trace output:\n%.400s", out)
	}
}
