package bench

import (
	"fmt"

	"ncache/internal/extfs"
	"ncache/internal/passthru"
	"ncache/internal/workload"
)

// Fig6aWorkingSetsMB is the working-set sweep of Figure 6(a), scaled from
// the paper's 250 MB–1 GB by Options.Scale (default 4 → 62–250 MB against a
// proportionally scaled server memory budget).
var Fig6aWorkingSetsMB = []int{250, 500, 750, 1000}

// Fig6bRequestKB is the request-size sweep of Figure 6(b).
var Fig6bRequestKB = []int{16, 32, 64, 128}

// serverMemoryMB is the effective page-cache budget of the paper's 896 MB
// application server (the kernel, daemons and anonymous memory claim the
// rest), split between the FS buffer cache and NCache.
const serverMemoryMB = 448

// RunFig6a reproduces Figure 6(a): kHTTPd under the SPECweb99-like Zipf
// load, sweeping the working-set size. NCache's metadata footprint shrinks
// its effective cache, so its curve falls off earlier at large sets.
func RunFig6a(opt Options) ([]WebPoint, error) {
	opt = opt.withDefaults()
	var out []WebPoint
	for _, mode := range Modes {
		for _, wsMB := range Fig6aWorkingSetsMB {
			p, err := runFig6aPoint(opt, mode, wsMB)
			if err != nil {
				return nil, fmt.Errorf("fig6a %s %dMB: %w", mode, wsMB, err)
			}
			out = append(out, p)
		}
	}
	return out, nil
}

func runFig6aPoint(opt Options, mode passthru.Mode, wsMB int) (WebPoint, error) {
	scale := int64(opt.Scale)
	wsBytes := int64(wsMB) << 20 / scale
	memBytes := int64(serverMemoryMB) << 20 / scale

	cs := clusterSpec{
		mode:          mode,
		nics:          2, // CPU-limited, as the paper's throughput gaps imply
		clients:       2,
		blocksPerDisk: wsBytes/4096/4 + 16384,
		web:           true,
	}
	switch mode {
	case passthru.NCache:
		// Small FS cache; NCache takes the rest of the memory budget.
		fsBytes := memBytes / 16
		cs.fsCacheBlocks = int(fsBytes / extfs.BlockSize)
		cs.ncacheBytes = memBytes - fsBytes
	default:
		cs.fsCacheBlocks = int(memBytes / extfs.BlockSize)
	}

	pages := workload.BuildPageSet(wsBytes)
	cl, err := cs.build(func(f *extfs.Formatter) error {
		for i, name := range pages.Names {
			if _, err := f.AddFile(name, uint64(pages.Sizes[i]), nil); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return WebPoint{}, err
	}
	conns, err := dialWebConns(cl, opt.Concurrency)
	if err != nil {
		return WebPoint{}, err
	}
	if err := prefillWeb(cl, conns[0], pages); err != nil {
		return WebPoint{}, err
	}
	// SPECweb99 popularity is Zipf-like but flatter than s=1 across its
	// class/rotation structure; 0.75 yields the paper's declining hit
	// ratios at large working sets.
	load := &workload.WebLoad{Conns: conns, Pages: pages, ZipfS: 0.75}
	return runWebLoad(cl, load, opt, wsMB)
}

// prefillWeb fetches every page once, least-popular first, so the server's
// LRU caches converge to the Zipf steady state (most-popular resident)
// before the measured window starts.
func prefillWeb(cl *passthru.Cluster, conn *passthru.HTTPConn, pages workload.PageSet) error {
	var firstErr error
	var next func(i int)
	done := false
	next = func(i int) {
		if i < 0 {
			done = true
			return
		}
		conn.Get(pages.Names[i], func(n int, err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
			next(i - 1)
		})
	}
	next(len(pages.Names) - 1)
	if err := cl.Eng.Run(); err != nil {
		return err
	}
	if firstErr != nil {
		return firstErr
	}
	if !done {
		return fmt.Errorf("bench: web prefill did not complete")
	}
	return nil
}

// RunFig6b reproduces Figure 6(b): the all-hit web micro-benchmark,
// sweeping the requested page size 16–128 KB.
func RunFig6b(opt Options) ([]WebPoint, error) {
	opt = opt.withDefaults()
	var out []WebPoint
	for _, mode := range Modes {
		for _, kb := range Fig6bRequestKB {
			p, err := runFig6bPoint(opt, mode, kb)
			if err != nil {
				return nil, fmt.Errorf("fig6b %s %dKB: %w", mode, kb, err)
			}
			out = append(out, p)
		}
	}
	return out, nil
}

func runFig6bPoint(opt Options, mode passthru.Mode, reqKB int) (WebPoint, error) {
	cs := clusterSpec{
		mode:          mode,
		nics:          2, // expose the CPU limit, as in Fig 5(b)
		clients:       2,
		blocksPerDisk: 16 * 1024,
		fsCacheBlocks: 8192,
		ncacheBytes:   64 << 20,
		web:           true,
	}
	name := "hotpage"
	cl, err := cs.build(func(f *extfs.Formatter) error {
		_, err := f.AddFile(name, uint64(reqKB)*1024, nil)
		return err
	})
	if err != nil {
		return WebPoint{}, err
	}
	conns, err := dialWebConns(cl, opt.Concurrency)
	if err != nil {
		return WebPoint{}, err
	}
	load := &workload.FixedWebLoad{Conns: conns, Page: name}
	return runWebLoad(cl, load, opt, reqKB)
}

// dialWebConns opens n persistent connections per client host, spread
// across server NICs.
func dialWebConns(cl *passthru.Cluster, perHost int) ([]*passthru.HTTPConn, error) {
	var conns []*passthru.HTTPConn
	var dialErr error
	want := 0
	for ci, host := range cl.Clients {
		for k := 0; k < perHost; k++ {
			nic := cl.App.Node.NICs()[ci%len(cl.App.Node.NICs())]
			want++
			host.DialHTTP(nic.Addr, func(h *passthru.HTTPConn, err error) {
				if err != nil && dialErr == nil {
					dialErr = err
					return
				}
				conns = append(conns, h)
			})
		}
	}
	if err := cl.Eng.Run(); err != nil {
		return nil, err
	}
	if dialErr != nil {
		return nil, dialErr
	}
	if len(conns) != want {
		return nil, fmt.Errorf("bench: dialed %d/%d web connections", len(conns), want)
	}
	return conns, nil
}

// runWebLoad measures one web point.
func runWebLoad(cl *passthru.Cluster, load workload.Load, opt Options, param int) (WebPoint, error) {
	runner := &workload.Runner{Eng: cl.Eng, Warmup: opt.Warmup, Window: opt.Window}
	p := WebPoint{Mode: cl.App.Mode, ParamKB: param}
	m, err := runner.Run(load,
		func() { resetClusterStats(cl) },
		func() {
			p.ServerCPU = cl.App.Node.CPU.Utilization()
			p.HitRatio = cl.App.Cache.Stats.HitRatio()
		})
	if err != nil {
		return WebPoint{}, err
	}
	p.ThroughputMBs = m.Throughput() / 1e6
	p.OpsPerSec = m.OpsPerSec()
	p.Errors = m.Errors
	return p, nil
}
