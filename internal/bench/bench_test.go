package bench

import (
	"strings"
	"testing"

	"ncache/internal/passthru"
	"ncache/internal/sim"
)

// quickOpts keeps unit-test experiment runs short.
func quickOpts() Options {
	return Options{
		Warmup:      20 * sim.Millisecond,
		Window:      80 * sim.Millisecond,
		Concurrency: 6,
		Scale:       16,
	}
}

// gainAt returns a mode's throughput gain over Original at one size.
func gainAt(points []NFSPoint, mode passthru.Mode, reqKB int) float64 {
	idx := nfsByMode(points)
	base := idx[passthru.Original][reqKB].ThroughputMBs
	return gainPct(idx[mode][reqKB].ThroughputMBs, base)
}

func TestTable1Inventory(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	// The two famous "None" rows.
	for _, i := range []int{0, 1} {
		if rows[i].Paper != "None" {
			t.Fatalf("row %d paper = %q, want None", i, rows[i].Paper)
		}
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "buffer cache") || !strings.Contains(out, "iSCSI initiator") {
		t.Fatal("formatted table missing modules")
	}
}

func TestTable2MatchesPaperExactly(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Copies != r.Want {
			t.Errorf("%s %s: measured %d, paper %d", r.Server, r.Path, r.Copies, r.Want)
		}
	}
	out := FormatTable2(rows)
	if strings.Contains(out, "MISMATCH") {
		t.Fatalf("table contains mismatches:\n%s", out)
	}
}

func TestFig5bOrderingHolds(t *testing.T) {
	pts, err := RunFig5b(quickOpts())
	if err != nil {
		t.Fatalf("RunFig5b: %v", err)
	}
	idx := nfsByMode(pts)
	for _, kb := range RequestSizesKB {
		orig := idx[passthru.Original][kb]
		nc := idx[passthru.NCache][kb]
		base := idx[passthru.Baseline][kb]
		if orig.Errors+nc.Errors+base.Errors != 0 {
			t.Fatalf("%dKB: errors present", kb)
		}
		// The paper's invariant: baseline >= ncache >= original.
		if nc.ThroughputMBs < orig.ThroughputMBs*0.99 {
			t.Errorf("%dKB: ncache (%.1f) below original (%.1f)", kb, nc.ThroughputMBs, orig.ThroughputMBs)
		}
		if base.ThroughputMBs < nc.ThroughputMBs*0.99 {
			t.Errorf("%dKB: baseline (%.1f) below ncache (%.1f)", kb, base.ThroughputMBs, nc.ThroughputMBs)
		}
	}
	// Gains grow with request size (per-byte savings dominate per-packet).
	if g4, g32 := gainAt(pts, passthru.NCache, 4), gainAt(pts, passthru.NCache, 32); g32 <= g4 {
		t.Errorf("ncache gain did not grow with request size: %.1f%% @4KB vs %.1f%% @32KB", g4, g32)
	}
	// CPU-bound regime: original saturates its CPU.
	if cpu := idx[passthru.Original][32].ServerCPU; cpu < 0.95 {
		t.Errorf("original server CPU = %.2f, want saturation", cpu)
	}
}

func TestFig4StorageSaturatesForNCache(t *testing.T) {
	opt := quickOpts()
	pts, err := RunFig4(opt)
	if err != nil {
		t.Fatalf("RunFig4: %v", err)
	}
	idx := nfsByMode(pts)
	// All-miss at 32 KB: the storage server becomes the bottleneck for
	// the zero-copy configurations (§5.4).
	if sto := idx[passthru.NCache][32].StorageCPU; sto < 0.85 {
		t.Errorf("ncache storage CPU = %.2f, want near saturation", sto)
	}
	if cpu := idx[passthru.Original][32].ServerCPU; cpu < 0.85 {
		t.Errorf("original server CPU = %.2f, want near saturation", cpu)
	}
	// NCache's server has headroom left (its curve declines in Fig 4(b)).
	if nc, orig := idx[passthru.NCache][32].ServerCPU, idx[passthru.Original][32].ServerCPU; nc >= orig {
		t.Errorf("ncache server CPU (%.2f) not below original (%.2f)", nc, orig)
	}
}

func TestFig6bWebGainsGrowWithRequestSize(t *testing.T) {
	pts, err := RunFig6b(quickOpts())
	if err != nil {
		t.Fatalf("RunFig6b: %v", err)
	}
	base := map[int]float64{}
	nc := map[int]float64{}
	for _, p := range pts {
		if p.Errors != 0 {
			t.Fatalf("%s@%d: %d errors", p.Mode, p.ParamKB, p.Errors)
		}
		switch p.Mode {
		case passthru.Original:
			base[p.ParamKB] = p.ThroughputMBs
		case passthru.NCache:
			nc[p.ParamKB] = p.ThroughputMBs
		}
	}
	g16 := gainPct(nc[16], base[16])
	g128 := gainPct(nc[128], base[128])
	if g16 <= 0 || g128 <= g16 {
		t.Fatalf("web gains not growing: %.1f%% @16KB, %.1f%% @128KB", g16, g128)
	}
}

func TestFig7GainsGrowWithDataFraction(t *testing.T) {
	pts, err := RunFig7(quickOpts())
	if err != nil {
		t.Fatalf("RunFig7: %v", err)
	}
	gain := map[int]float64{}
	base := map[int]float64{}
	for _, p := range pts {
		if p.Errors != 0 {
			t.Fatalf("%s@%d%%: %d errors", p.Mode, p.RegularDataPct, p.Errors)
		}
		switch p.Mode {
		case passthru.Original:
			base[p.RegularDataPct] = p.OpsPerSec
		case passthru.NCache:
			gain[p.RegularDataPct] = p.OpsPerSec
		}
	}
	g30 := gainPct(gain[30], base[30])
	g75 := gainPct(gain[75], base[75])
	if g30 <= 0 {
		t.Fatalf("no gain at 30%% regular data: %.1f%%", g30)
	}
	if g75 <= g30 {
		t.Fatalf("gain did not grow with data fraction: %.1f%% → %.1f%%", g30, g75)
	}
}

func TestTransportTCPCostsThroughput(t *testing.T) {
	pts, err := RunTransportComparison(quickOpts())
	if err != nil {
		t.Fatalf("RunTransportComparison: %v", err)
	}
	byKey := map[string]TransportPoint{}
	for _, p := range pts {
		byKey[p.Mode.String()+"/"+p.Transport] = p
	}
	for _, mode := range []string{"original", "ncache"} {
		u, tc := byKey[mode+"/udp"], byKey[mode+"/tcp"]
		if tc.ThroughputMBs >= u.ThroughputMBs {
			t.Errorf("%s: TCP (%.1f) not slower than UDP (%.1f)", mode, tc.ThroughputMBs, u.ThroughputMBs)
		}
		if tc.ServerPkts <= u.ServerPkts {
			t.Errorf("%s: TCP pkts/req (%.1f) not above UDP (%.1f)", mode, tc.ServerPkts, u.ServerPkts)
		}
	}
}

func TestWireFormatLiftsNCacheCeiling(t *testing.T) {
	pts, err := RunFutureWorkWireFormat(quickOpts())
	if err != nil {
		t.Fatalf("RunFutureWorkWireFormat: %v", err)
	}
	gains := map[passthru.Mode]float64{}
	base := map[passthru.Mode]float64{}
	for _, p := range pts {
		if p.WireFormat {
			gains[p.Mode] = p.ThroughputMBs
		} else {
			base[p.Mode] = p.ThroughputMBs
		}
	}
	origGain := gains[passthru.Original]/base[passthru.Original] - 1
	ncGain := gains[passthru.NCache]/base[passthru.NCache] - 1
	// §6's motivation: the storage-side fix helps the zero-copy server
	// far more than the copy-bound original.
	if ncGain <= origGain {
		t.Errorf("wire-format gains: ncache %.1f%% <= original %.1f%%", ncGain*100, origGain*100)
	}
	if ncGain < 0.05 {
		t.Errorf("ncache wire-format gain %.1f%% too small", ncGain*100)
	}
}

func TestGainPct(t *testing.T) {
	if g := gainPct(150, 100); g != 50 {
		t.Fatalf("gainPct = %v", g)
	}
	if g := gainPct(100, 0); g != 0 {
		t.Fatalf("gainPct with zero base = %v", g)
	}
}

func TestFormatters(t *testing.T) {
	nfsPts := []NFSPoint{
		{Mode: passthru.Original, ReqKB: 4, ThroughputMBs: 10},
		{Mode: passthru.NCache, ReqKB: 4, ThroughputMBs: 15},
	}
	out := FormatNFSPoints("t", nfsPts)
	if !strings.Contains(out, "+50.0%") {
		t.Fatalf("gain missing:\n%s", out)
	}
	webPts := []WebPoint{
		{Mode: passthru.Original, ParamKB: 16, ThroughputMBs: 10},
		{Mode: passthru.Baseline, ParamKB: 16, ThroughputMBs: 14},
	}
	if out := FormatWebPoints("t", "reqKB", webPts); !strings.Contains(out, "+40.0%") {
		t.Fatalf("web gain missing:\n%s", out)
	}
	sfsPts := []SFSPoint{
		{Mode: passthru.Original, RegularDataPct: 30, OpsPerSec: 100},
		{Mode: passthru.NCache, RegularDataPct: 30, OpsPerSec: 120},
	}
	if out := FormatSFSPoints(sfsPts); !strings.Contains(out, "+20.0%") {
		t.Fatalf("sfs gain missing:\n%s", out)
	}
}
