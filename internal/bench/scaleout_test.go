package bench

import "testing"

// TestScaleoutScales is the acceptance check of the scale-out experiment:
// with the client population growing with the tier, four routed front-end
// servers must deliver more aggregate throughput than one.
func TestScaleoutScales(t *testing.T) {
	pts, err := RunScaleoutCounts(quickOpts(), []int{1, 4}, ScaleoutTargets)
	if err != nil {
		t.Fatalf("scaleout: %v", err)
	}
	if len(pts) != 2 {
		t.Fatalf("scaleout: got %d points, want 2", len(pts))
	}
	one, four := pts[0], pts[1]
	if one.Errors+one.RouteErrors != 0 || four.Errors+four.RouteErrors != 0 {
		t.Fatalf("scaleout: errors: 1-server %d/%d, 4-server %d/%d",
			one.Errors, one.RouteErrors, four.Errors, four.RouteErrors)
	}
	if four.ThroughputMBs <= one.ThroughputMBs {
		t.Fatalf("scaleout: 4 servers (%.1f MB/s) did not beat 1 server (%.1f MB/s)",
			four.ThroughputMBs, one.ThroughputMBs)
	}
	if four.CPLookups+four.CPMembers == 0 {
		t.Fatalf("scaleout: 4-server run resolved no routes through the control plane")
	}
	if four.LocalRouteHits == 0 {
		t.Fatalf("scaleout: 4-server run answered no routes from the client ring replicas")
	}
	if four.RemapsSent == 0 {
		t.Fatalf("scaleout: 4-server run announced no remaps (flushers idle?)")
	}
	if four.RemapsAbandoned != 0 {
		t.Fatalf("scaleout: %d remaps abandoned on a fault-free run", four.RemapsAbandoned)
	}
	t.Logf("\n%s", FormatScaleoutPoints(pts))
}

// TestSeedReplayScaleout: the scale-out run, with its routed clients,
// background flushers and remap traffic, must replay bit-for-bit.
func TestSeedReplayScaleout(t *testing.T) {
	opt := quickOpts()
	first, err := RunScaleoutCounts(opt, []int{2}, ScaleoutTargets)
	if err != nil {
		t.Fatalf("scaleout first run: %v", err)
	}
	second, err := RunScaleoutCounts(opt, []int{2}, ScaleoutTargets)
	if err != nil {
		t.Fatalf("scaleout second run: %v", err)
	}
	diffPoints(t, "scaleout", first, second)
}
