package bench

import (
	"fmt"
	"strings"

	"ncache/internal/passthru"
	"ncache/internal/sim"
	"ncache/internal/trace"
)

// gainPct returns the percentage gain of v over base.
func gainPct(v, base float64) float64 {
	if base <= 0 {
		return 0
	}
	return (v/base - 1) * 100
}

// nfsByMode indexes points for gain computation.
func nfsByMode(points []NFSPoint) map[passthru.Mode]map[int]NFSPoint {
	out := make(map[passthru.Mode]map[int]NFSPoint)
	for _, p := range points {
		if out[p.Mode] == nil {
			out[p.Mode] = make(map[int]NFSPoint)
		}
		out[p.Mode][p.ReqKB] = p
	}
	return out
}

// FormatNFSPoints renders a Figure 4/5-style table: throughput, server and
// storage CPU per request size per mode, with gains over Original.
func FormatNFSPoints(title string, points []NFSPoint) string {
	idx := nfsByMode(points)
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-10s %6s %12s %9s %9s %9s %9s %10s\n",
		"config", "reqKB", "MB/s", "ops/s", "srvCPU%", "stoCPU%", "link%", "vs orig")
	for _, mode := range Modes {
		for _, p := range points {
			if p.Mode != mode {
				continue
			}
			gain := ""
			if mode != passthru.Original {
				if base, ok := idx[passthru.Original][p.ReqKB]; ok {
					gain = fmt.Sprintf("%+.1f%%", gainPct(p.ThroughputMBs, base.ThroughputMBs))
				}
			}
			fmt.Fprintf(&b, "%-10s %6d %12.1f %9.0f %9.1f %9.1f %9.1f %10s\n",
				mode, p.ReqKB, p.ThroughputMBs, p.OpsPerSec,
				p.ServerCPU*100, p.StorageCPU*100, p.LinkUtil*100, gain)
		}
	}
	return b.String()
}

// us renders a virtual duration in microseconds.
func us(d sim.Duration) string { return fmt.Sprintf("%.1f", float64(d)/1e3) }

// FormatLatency renders the latency-percentile table for traced points
// (Options.Latency): percentiles in microseconds, then each layer's share
// of the end-to-end latency. Points without traces are skipped.
func FormatLatency(title string, points []NFSPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-10s %6s %-6s %7s %9s %9s %9s %9s %9s %9s",
		"config", "reqKB", "op", "count", "mean_µs", "p50_µs", "p90_µs", "p99_µs", "p999_µs", "max_µs")
	for l := trace.Layer(0); l < trace.NumLayers; l++ {
		fmt.Fprintf(&b, " %6s%%", l)
	}
	b.WriteByte('\n')
	var attrErrs uint64
	for _, mode := range Modes {
		for _, p := range points {
			if p.Mode != mode || p.Lat == nil {
				continue
			}
			attrErrs += p.Lat.AttrErrors
			for _, op := range p.Lat.Ops {
				fmt.Fprintf(&b, "%-10s %6d %-6s %7d %9s %9s %9s %9s %9s %9s",
					mode, p.ReqKB, op.Op, op.Count,
					us(op.Mean), us(op.P50), us(op.P90), us(op.P99), us(op.P999), us(op.Max))
				for _, ls := range op.Layers {
					pct := 0.0
					if op.Total > 0 {
						pct = float64(ls.Total) / float64(op.Total) * 100
					}
					fmt.Fprintf(&b, " %6.1f", pct)
				}
				b.WriteByte('\n')
			}
		}
	}
	if attrErrs > 0 {
		fmt.Fprintf(&b, "WARNING: %d spans failed per-layer attribution (sum != duration)\n", attrErrs)
	}
	return b.String()
}

// FormatWebPoints renders a Figure 6-style table.
func FormatWebPoints(title, paramName string, points []WebPoint) string {
	base := make(map[int]WebPoint)
	for _, p := range points {
		if p.Mode == passthru.Original {
			base[p.ParamKB] = p
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-10s %8s %12s %9s %9s %9s %10s\n",
		"config", paramName, "MB/s", "ops/s", "srvCPU%", "hit%", "vs orig")
	for _, mode := range Modes {
		for _, p := range points {
			if p.Mode != mode {
				continue
			}
			gain := ""
			if mode != passthru.Original {
				if bp, ok := base[p.ParamKB]; ok {
					gain = fmt.Sprintf("%+.1f%%", gainPct(p.ThroughputMBs, bp.ThroughputMBs))
				}
			}
			fmt.Fprintf(&b, "%-10s %8d %12.1f %9.0f %9.1f %9.1f %10s\n",
				mode, p.ParamKB, p.ThroughputMBs, p.OpsPerSec,
				p.ServerCPU*100, p.HitRatio*100, gain)
		}
	}
	return b.String()
}

// FormatSFSPoints renders the Figure 7 table.
func FormatSFSPoints(points []SFSPoint) string {
	base := make(map[int]SFSPoint)
	for _, p := range points {
		if p.Mode == passthru.Original {
			base[p.RegularDataPct] = p
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: SPECsfs-like throughput vs regular-data fraction\n")
	fmt.Fprintf(&b, "%-10s %8s %9s %9s %10s\n", "config", "data%", "ops/s", "srvCPU%", "vs orig")
	for _, mode := range Modes {
		for _, p := range points {
			if p.Mode != mode {
				continue
			}
			gain := ""
			if mode != passthru.Original {
				if bp, ok := base[p.RegularDataPct]; ok {
					gain = fmt.Sprintf("%+.1f%%", gainPct(p.OpsPerSec, bp.OpsPerSec))
				}
			}
			fmt.Fprintf(&b, "%-10s %8d %9.0f %9.1f %10s\n",
				mode, p.RegularDataPct, p.OpsPerSec, p.ServerCPU*100, gain)
		}
	}
	return b.String()
}
