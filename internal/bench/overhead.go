package bench

import (
	"fmt"
	"strings"

	"ncache/internal/extfs"
	"ncache/internal/nfs"
	"ncache/internal/passthru"
	"ncache/internal/sim"
	"ncache/internal/simnet"
	"ncache/internal/workload"
)

// OverheadRow is one component of NCache's per-request CPU overhead — the
// breakdown the paper defers to its technical report (TR-177 footnote,
// §5.5): where the gap between NFS-NCache and NFS-baseline goes.
type OverheadRow struct {
	Component string
	// NsPerOp is the estimated CPU time per NFS request.
	NsPerOp float64
	// SharePct is the share of the total measured NCache/baseline gap.
	SharePct float64
}

// OverheadReport is the full breakdown plus the measured envelope.
type OverheadReport struct {
	Rows []OverheadRow
	// NCacheCPUPerOpNs / BaselineCPUPerOpNs are the measured per-request
	// CPU times of the two configurations.
	NCacheCPUPerOpNs   float64
	BaselineCPUPerOpNs float64
	// AccountedPct is how much of the measured gap the component model
	// explains (a sanity check on the accounting).
	AccountedPct float64
}

// RunOverheadBreakdown measures the all-hit 32 KB point in NCache and
// Baseline modes, then attributes the CPU-per-request gap to NCache's
// mechanism components using the module's activity counters and the cost
// profile's constants.
func RunOverheadBreakdown(opt Options) (OverheadReport, error) {
	opt = opt.withDefaults()
	const hotBytes = 5 << 20
	const reqKB = 32

	type sample struct {
		cpuPerOp float64
		lookups  float64 // hash ops per request
		substBuf float64
		mgmt     float64 // captures per request
		logical  float64
	}
	measure := func(mode passthru.Mode) (sample, error) {
		cs := clusterSpec{
			mode:          mode,
			nics:          2,
			clients:       2,
			blocksPerDisk: 16 * 1024,
			fsCacheBlocks: 8192,
			ncacheBytes:   64 << 20,
		}
		cl, err := cs.build(func(f *extfs.Formatter) error {
			_, err := f.AddFile("hotfile", hotBytes, nil)
			return err
		})
		if err != nil {
			return sample{}, err
		}
		fh, err := lookupFH(cl, 0, "hotfile")
		if err != nil {
			return sample{}, err
		}
		if err := prefill(cl, fh, hotBytes); err != nil {
			return sample{}, err
		}
		clients := make([]*nfs.Client, 0, len(cl.Clients))
		for _, h := range cl.Clients {
			clients = append(clients, h.NFS)
		}
		load := &workload.NFSReadLoad{
			Clients: clients, FH: fh, FileSize: hotBytes,
			RequestSize: reqKB * 1024, Pattern: workload.HotSet,
			Concurrency: opt.Concurrency,
		}
		runner := &workload.Runner{Eng: cl.Eng, Warmup: opt.Warmup, Window: opt.Window}
		var s sample
		var statsBefore, statsAfter struct {
			subst, substBufs, captures, l2, logical uint64
		}
		snap := func(dst *struct{ subst, substBufs, captures, l2, logical uint64 }) {
			if cl.App.Module != nil {
				dst.subst = cl.App.Module.Stats.Substitutions
				dst.substBufs = cl.App.Module.Stats.SubstBufs
				dst.captures = cl.App.Module.Stats.Captures
				dst.l2 = cl.App.Module.Stats.L2Hits
			}
			dst.logical = cl.App.Node.Copies.LogicalOps
		}
		var busy sim.Duration
		m, err := runner.Run(load,
			func() {
				resetClusterStats(cl)
				snap(&statsBefore)
			},
			func() {
				busy = cl.App.Node.CPU.Busy()
				snap(&statsAfter)
			})
		if err != nil {
			return sample{}, err
		}
		if m.Ops == 0 {
			return sample{}, fmt.Errorf("overhead: no ops measured")
		}
		ops := float64(m.Ops)
		s.cpuPerOp = float64(busy) / ops
		s.lookups = float64(statsAfter.subst-statsBefore.subst+statsAfter.l2-statsBefore.l2) / ops
		s.substBuf = float64(statsAfter.substBufs-statsBefore.substBufs) / ops
		s.mgmt = float64(statsAfter.captures-statsBefore.captures) / ops
		s.logical = float64(statsAfter.logical-statsBefore.logical) / ops
		return s, nil
	}

	nc, err := measure(passthru.NCache)
	if err != nil {
		return OverheadReport{}, err
	}
	base, err := measure(passthru.Baseline)
	if err != nil {
		return OverheadReport{}, err
	}

	cost := simProfile()
	rows := []OverheadRow{
		{Component: "hash lookups (LBN/FHO)", NsPerOp: nc.lookups * float64(cost.NCacheLookupNs)},
		{Component: "packet substitution", NsPerOp: nc.substBuf * float64(cost.NCacheSubstNs)},
		{Component: "cache management (LRU/insert)", NsPerOp: nc.mgmt * float64(cost.NCacheMgmtNs)},
		{Component: "logical copies (keys)", NsPerOp: nc.logical * float64(cost.LogicalCopyNs)},
	}
	gap := nc.cpuPerOp - base.cpuPerOp
	var accounted float64
	for i := range rows {
		if gap > 0 {
			rows[i].SharePct = rows[i].NsPerOp / gap * 100
		}
		accounted += rows[i].NsPerOp
	}
	rep := OverheadReport{
		Rows:               rows,
		NCacheCPUPerOpNs:   nc.cpuPerOp,
		BaselineCPUPerOpNs: base.cpuPerOp,
	}
	if gap > 0 {
		rep.AccountedPct = accounted / gap * 100
	}
	return rep, nil
}

// simProfile exposes the calibrated constants for attribution.
func simProfile() simnet.CostProfile { return simnet.DefaultProfile() }

// FormatOverhead renders the breakdown.
func FormatOverhead(r OverheadReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "NCache per-request overhead breakdown (all-hit, 32 KB — the §5.5/TR-177 gap)\n")
	fmt.Fprintf(&b, "measured CPU/op: ncache %.1f µs, baseline %.1f µs, gap %.1f µs\n",
		r.NCacheCPUPerOpNs/1000, r.BaselineCPUPerOpNs/1000,
		(r.NCacheCPUPerOpNs-r.BaselineCPUPerOpNs)/1000)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-32s %8.2f µs/op  %5.1f%% of gap\n",
			row.Component, row.NsPerOp/1000, row.SharePct)
	}
	fmt.Fprintf(&b, "  components account for %.1f%% of the measured gap\n", r.AccountedPct)
	return b.String()
}
