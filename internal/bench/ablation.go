package bench

import (
	"fmt"

	"ncache/internal/extfs"
	"ncache/internal/nfs"
	"ncache/internal/passthru"
	"ncache/internal/simnet"
	"ncache/internal/workload"
)

// AblationResult is a single measured configuration of an ablation.
type AblationResult struct {
	OpsPerSec     float64
	ThroughputMBs float64
	GainPct       float64
	Remaps        uint64
	L2Hits        uint64
}

// RunAblationRemap measures a flush-heavy mixed workload with FHO→LBN
// remapping on and off. With remapping, data written by clients and flushed
// by the file system stays in the network-centric cache under its LBN and
// later reads hit locally; without it, those reads go back to storage.
func RunAblationRemap(opt Options) (with, without AblationResult, err error) {
	opt = opt.withDefaults()
	run := func(disable bool) (AblationResult, error) {
		const fileBytes = 32 << 20
		cs := clusterSpec{
			mode:          passthru.NCache,
			nics:          1,
			clients:       2,
			blocksPerDisk: 32 * 1024,
			// A tiny FS cache: after the write phase its blocks are
			// evicted, so the read phase depends on the NCache L2.
			fsCacheBlocks: 1024,
			ncacheBytes:   256 << 20,
			disableRemap:  disable,
		}
		var spec extfs.FileSpec
		cl, err := cs.build(func(f *extfs.Formatter) error {
			var err error
			spec, err = f.AddFile("churn.dat", fileBytes, nil)
			return err
		})
		if err != nil {
			return AblationResult{}, err
		}
		fh, err := lookupFH(cl, 0, "churn.dat")
		if err != nil {
			return AblationResult{}, err
		}
		clients := make([]*nfs.Client, 0, len(cl.Clients))
		for _, h := range cl.Clients {
			clients = append(clients, h.NFS)
		}
		// Phase 1: overwrite the whole file, then sync — every block is
		// flushed, exercising remap (or dropping entries when disabled).
		wtr := workload.GenSequentialRead(fh, spec.Size, 32*1024)
		for i := range wtr.Ops {
			wtr.Ops[i].Kind = workload.OpWrite
		}
		wdone := false
		writer := &workload.TracePlayer{
			Clients: clients, Trace: wtr, Concurrency: opt.Concurrency,
			Done: func() { wdone = true },
		}
		writer.Start()
		if err := cl.Eng.Run(); err != nil {
			return AblationResult{}, err
		}
		if !wdone {
			return AblationResult{}, fmt.Errorf("remap ablation: write phase stuck")
		}
		synced := false
		cl.App.FS.Sync(func(err error) { synced = err == nil })
		if err := cl.Eng.Run(); err != nil {
			return AblationResult{}, err
		}
		if !synced {
			return AblationResult{}, fmt.Errorf("remap ablation: sync failed")
		}
		// Phase 2: random reads of the flushed data.
		load := &workload.NFSReadLoad{
			Clients: clients, FH: fh, FileSize: spec.Size,
			RequestSize: 8 * 1024, Pattern: workload.HotSet,
			Concurrency: opt.Concurrency,
		}
		runner := &workload.Runner{Eng: cl.Eng, Warmup: opt.Warmup, Window: opt.Window}
		m, err := runner.Run(load, func() { resetClusterStats(cl) }, nil)
		if err != nil {
			return AblationResult{}, err
		}
		return AblationResult{
			OpsPerSec:     m.OpsPerSec(),
			ThroughputMBs: m.Throughput() / 1e6,
			Remaps:        cl.App.Module.Stats.Remaps,
			L2Hits:        cl.App.Module.Stats.L2Hits,
		}, nil
	}
	if with, err = run(false); err != nil {
		return with, without, err
	}
	without, err = run(true)
	return with, without, err
}

// CopyCostRow is one point of the copy-cost sweep.
type CopyCostRow struct {
	NsPerByte   float64
	OriginalMBs float64
	NCacheMBs   float64
	GainPct     float64
}

// RunAblationCopyCost sweeps the per-byte memcpy cost on the CPU-bound
// all-hit workload: NCache's advantage is exactly the copies it does not
// perform, so the gain must grow with the cost of a copy.
func RunAblationCopyCost(opt Options) ([]CopyCostRow, error) {
	opt = opt.withDefaults()
	var out []CopyCostRow
	for _, ns := range []float64{1.5, 3.0, 6.0} {
		cost := simnet.DefaultProfile()
		cost.CopyNsPerByte = ns
		orig, err := allHitPoint(opt, passthru.Original, cost, true)
		if err != nil {
			return nil, err
		}
		nc, err := allHitPoint(opt, passthru.NCache, cost, true)
		if err != nil {
			return nil, err
		}
		out = append(out, CopyCostRow{
			NsPerByte:   ns,
			OriginalMBs: orig.ThroughputMBs,
			NCacheMBs:   nc.ThroughputMBs,
			GainPct:     gainPct(nc.ThroughputMBs, orig.ThroughputMBs),
		})
	}
	return out, nil
}

// RunAblationChecksum compares NCache's gain with NIC checksum offload on
// (the testbed default) and off (software checksums charge per payload byte
// in every configuration).
func RunAblationChecksum(opt Options) (on, off AblationResult, err error) {
	opt = opt.withDefaults()
	cost := simnet.DefaultProfile()
	for _, offload := range []bool{true, false} {
		orig, err := allHitPointOffload(opt, passthru.Original, cost, offload)
		if err != nil {
			return on, off, err
		}
		nc, err := allHitPointOffload(opt, passthru.NCache, cost, offload)
		if err != nil {
			return on, off, err
		}
		r := AblationResult{
			ThroughputMBs: nc.ThroughputMBs,
			GainPct:       gainPct(nc.ThroughputMBs, orig.ThroughputMBs),
		}
		if offload {
			on = r
		} else {
			off = r
		}
	}
	return on, off, nil
}

// allHitPoint measures one 32 KB all-hit point with a custom cost profile.
func allHitPoint(opt Options, mode passthru.Mode, cost simnet.CostProfile, offload bool) (NFSPoint, error) {
	return allHitPointOffload(opt, mode, cost, offload)
}

func allHitPointOffload(opt Options, mode passthru.Mode, cost simnet.CostProfile, offload bool) (NFSPoint, error) {
	const hotBytes = 5 << 20
	cs := clusterSpec{
		mode:          mode,
		nics:          2,
		clients:       2,
		blocksPerDisk: 16 * 1024,
		fsCacheBlocks: 8192,
		ncacheBytes:   64 << 20,
		cost:          cost,
	}
	cl, err := cs.build(func(f *extfs.Formatter) error {
		_, err := f.AddFile("hotfile", hotBytes, nil)
		return err
	})
	if err != nil {
		return NFSPoint{}, err
	}
	if !offload {
		for _, nic := range cl.App.Node.NICs() {
			nic.ChecksumOffload = false
		}
		for _, nic := range cl.Storage.Node.NICs() {
			nic.ChecksumOffload = false
		}
		for _, host := range cl.Clients {
			for _, nic := range host.Node.NICs() {
				nic.ChecksumOffload = false
			}
		}
	}
	fh, err := lookupFH(cl, 0, "hotfile")
	if err != nil {
		return NFSPoint{}, err
	}
	if err := prefill(cl, fh, hotBytes); err != nil {
		return NFSPoint{}, err
	}
	clients := make([]*nfs.Client, 0, len(cl.Clients))
	for _, h := range cl.Clients {
		clients = append(clients, h.NFS)
	}
	load := &workload.NFSReadLoad{
		Clients:     clients,
		FH:          fh,
		FileSize:    hotBytes,
		RequestSize: 32 * 1024,
		Pattern:     workload.HotSet,
		Concurrency: opt.Concurrency,
	}
	return runNFSLoad(cl, load, opt, 32)
}

// CacheSplitRow is one point of the memory-split sweep.
type CacheSplitRow struct {
	FSCacheMB     int
	ThroughputMBs float64
	FSHitPct      float64
	L2Hits        uint64
}

// RunAblationCacheSplit fixes the server's memory budget and sweeps how
// much goes to the FS buffer cache versus NCache under a working set larger
// than either alone — quantifying the double-buffering control of §3.4.
func RunAblationCacheSplit(opt Options) ([]CacheSplitRow, error) {
	opt = opt.withDefaults()
	const budgetMB = 96
	wsBytes := int64(128) << 20
	pages := workload.BuildPageSet(wsBytes)
	var out []CacheSplitRow
	for _, fsMB := range []int{4, 16, 48} {
		cs := clusterSpec{
			mode:          passthru.NCache,
			nics:          2,
			clients:       2,
			blocksPerDisk: wsBytes/4096/4 + 16384,
			fsCacheBlocks: fsMB << 20 / extfs.BlockSize,
			ncacheBytes:   int64(budgetMB-fsMB) << 20,
			web:           true,
		}
		cl, err := cs.build(func(f *extfs.Formatter) error {
			for i, name := range pages.Names {
				if _, err := f.AddFile(name, uint64(pages.Sizes[i]), nil); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		conns, err := dialWebConns(cl, opt.Concurrency)
		if err != nil {
			return nil, err
		}
		if err := prefillWeb(cl, conns[0], pages); err != nil {
			return nil, err
		}
		load := &workload.WebLoad{Conns: conns, Pages: pages, ZipfS: 0.75}
		p, err := runWebLoad(cl, load, opt, fsMB)
		if err != nil {
			return nil, err
		}
		out = append(out, CacheSplitRow{
			FSCacheMB:     fsMB,
			ThroughputMBs: p.ThroughputMBs,
			FSHitPct:      p.HitRatio * 100,
			L2Hits:        cl.App.Module.Stats.L2Hits,
		})
	}
	return out, nil
}

// ensure fmt usage for error context helpers below.
var _ = fmt.Sprintf
