package buffercache

import (
	"bytes"
	"errors"
	"testing"

	"ncache/internal/lkey"
	"ncache/internal/netbuf"
	"ncache/internal/sim"
	"ncache/internal/simnet"
)

// fakeLower is an in-memory block store that records traffic and optionally
// rewrites payloads (to emulate the NCache/baseline hooks).
type fakeLower struct {
	eng     *sim.Engine
	bs      int
	blocks  map[int64][]byte
	reads   []fakeReq
	writes  []fakeReq
	readFn  func(lbn int64, count int) *netbuf.Chain // optional override
	latency sim.Duration
}

type fakeReq struct {
	lbn   int64
	count int
	meta  bool
	data  []byte
}

func newFakeLower(eng *sim.Engine, bs int) *fakeLower {
	return &fakeLower{eng: eng, bs: bs, blocks: map[int64][]byte{}, latency: 10 * sim.Microsecond}
}

func (f *fakeLower) BlockSize() int   { return f.bs }
func (f *fakeLower) NumBlocks() int64 { return 1 << 20 }

func (f *fakeLower) content(lbn int64) []byte {
	if b, ok := f.blocks[lbn]; ok {
		return b
	}
	out := make([]byte, f.bs)
	for i := range out {
		out[i] = byte(lbn*13 + int64(i)%251)
	}
	return out
}

func (f *fakeLower) ReadAt(lbn int64, count int, meta bool, done func(*netbuf.Chain, error)) {
	f.reads = append(f.reads, fakeReq{lbn: lbn, count: count, meta: meta})
	f.eng.Schedule(f.latency, func() {
		if f.readFn != nil {
			done(f.readFn(lbn, count), nil)
			return
		}
		buf := make([]byte, 0, count*f.bs)
		for j := 0; j < count; j++ {
			buf = append(buf, f.content(lbn+int64(j))...)
		}
		done(netbuf.ChainFromBytes(buf, netbuf.DefaultBufSize), nil)
	})
}

func (f *fakeLower) WriteAt(lbn int64, data *netbuf.Chain, meta bool, done func(error)) {
	flat := data.Flatten()
	data.Release()
	f.writes = append(f.writes, fakeReq{lbn: lbn, count: len(flat) / f.bs, meta: meta, data: flat})
	f.eng.Schedule(f.latency, func() {
		for j := 0; j*f.bs < len(flat); j++ {
			b := make([]byte, f.bs)
			copy(b, flat[j*f.bs:])
			f.blocks[lbn+int64(j)] = b
		}
		done(nil)
	})
}

func rigCache(t *testing.T, capacity int) (*sim.Engine, *simnet.Node, *fakeLower, *Cache) {
	t.Helper()
	eng := sim.NewEngine()
	node := simnet.NewNode(eng, "app", simnet.DefaultProfile())
	lower := newFakeLower(eng, 4096)
	return eng, node, lower, New(node, lower, capacity)
}

func TestMissThenHit(t *testing.T) {
	eng, node, lower, c := rigCache(t, 16)
	var first, second []byte
	c.Get(5, false, func(b *Block, err error) {
		if err != nil {
			t.Errorf("Get: %v", err)
			return
		}
		first = append([]byte(nil), b.Data...)
		c.Unpin(b)
		c.Get(5, false, func(b2 *Block, err error) {
			if err != nil {
				t.Errorf("Get2: %v", err)
				return
			}
			second = append([]byte(nil), b2.Data...)
			c.Unpin(b2)
		})
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !bytes.Equal(first, lower.content(5)) {
		t.Fatal("miss returned wrong content")
	}
	if !bytes.Equal(second, first) {
		t.Fatal("hit returned different content")
	}
	if len(lower.reads) != 1 {
		t.Fatalf("lower reads = %d, want 1", len(lower.reads))
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
	// The miss fill charged one physical copy of one block.
	if node.Copies.PhysicalOps != 1 || node.Copies.PhysicalBytes != 4096 {
		t.Fatalf("copies = %+v", node.Copies)
	}
}

func TestRangeCoalescesMissRuns(t *testing.T) {
	eng, _, lower, c := rigCache(t, 64)
	// Pre-populate block 12 so the range 10..17 has a hole in the middle.
	c.Get(12, false, func(b *Block, err error) {
		if err == nil {
			c.Unpin(b)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	lower.reads = nil

	var got [][]byte
	c.GetRange(10, 8, false, func(bs []*Block, err error) {
		if err != nil {
			t.Errorf("GetRange: %v", err)
			return
		}
		for _, b := range bs {
			got = append(got, append([]byte(nil), b.Data...))
			c.Unpin(b)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 8 {
		t.Fatalf("blocks = %d", len(got))
	}
	for j := 0; j < 8; j++ {
		if !bytes.Equal(got[j], lower.content(10+int64(j))) {
			t.Fatalf("block %d content wrong", j)
		}
	}
	// Two lower reads: [10,12) and [13,18).
	if len(lower.reads) != 2 {
		t.Fatalf("lower reads = %d (%+v), want 2 coalesced runs", len(lower.reads), lower.reads)
	}
}

func TestConcurrentMissesCoalesce(t *testing.T) {
	eng, _, lower, c := rigCache(t, 16)
	done := 0
	for k := 0; k < 3; k++ {
		c.Get(7, false, func(b *Block, err error) {
			if err != nil {
				t.Errorf("Get: %v", err)
				return
			}
			if !bytes.Equal(b.Data, lower.content(7)) {
				t.Error("content wrong")
			}
			c.Unpin(b)
			done++
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if done != 3 {
		t.Fatalf("done = %d", done)
	}
	if len(lower.reads) != 1 {
		t.Fatalf("lower reads = %d, want 1 (in-flight coalescing)", len(lower.reads))
	}
}

func TestWriteBackOnEviction(t *testing.T) {
	eng, _, lower, c := rigCache(t, 4)
	// Dirty one block, then flood the cache to force eviction.
	c.GetForWrite(100, false, func(b *Block, err error) {
		if err != nil {
			t.Errorf("GetForWrite: %v", err)
			return
		}
		copy(b.Data, bytes.Repeat([]byte{0xEE}, 4096))
		b.Logical = false
		c.MarkDirty(b)
		c.Unpin(b)
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := int64(0); i < 8; i++ {
		c.Get(i, false, func(b *Block, err error) {
			if err == nil {
				c.Unpin(b)
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(lower.writes) != 1 {
		t.Fatalf("writes = %d, want 1 (dirty eviction)", len(lower.writes))
	}
	if lower.writes[0].lbn != 100 {
		t.Fatalf("wrote lbn %d", lower.writes[0].lbn)
	}
	if !bytes.Equal(lower.blocks[100], bytes.Repeat([]byte{0xEE}, 4096)) {
		t.Fatal("written content wrong")
	}
	if len(c.blocks) > 4 {
		t.Fatalf("cache exceeded capacity: %d", len(c.blocks))
	}
}

func TestSyncFlushesAllDirty(t *testing.T) {
	eng, _, lower, c := rigCache(t, 16)
	for i := int64(0); i < 5; i++ {
		i := i
		c.GetForWrite(i, false, func(b *Block, err error) {
			if err != nil {
				t.Errorf("GetForWrite: %v", err)
				return
			}
			b.Data[0] = byte(i + 1)
			c.MarkDirty(b)
			c.Unpin(b)
		})
	}
	synced := false
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	c.Sync(func(err error) {
		if err != nil {
			t.Errorf("Sync: %v", err)
		}
		synced = true
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !synced {
		t.Fatal("Sync did not complete")
	}
	// The five adjacent dirty LBNs must coalesce into one scatter-gather
	// write (the batched flusher), not five per-block I/Os.
	if len(lower.writes) != 1 {
		t.Fatalf("writes = %d, want 1 coalesced batch", len(lower.writes))
	}
	if w := lower.writes[0]; w.lbn != 0 || w.count != 5 {
		t.Fatalf("batch = lbn %d count %d, want lbn 0 count 5", w.lbn, w.count)
	}
	for i := int64(0); i < 5; i++ {
		if got := lower.blocks[i][0]; got != byte(i+1) {
			t.Fatalf("block %d content = %#x, want %#x", i, got, byte(i+1))
		}
	}
	if c.DirtyCount() != 0 {
		t.Fatalf("dirty after sync = %d", c.DirtyCount())
	}
}

func TestLogicalBlockFillIsKeyCopy(t *testing.T) {
	eng, node, lower, c := rigCache(t, 16)
	// Lower returns key-stamped junk, as the NCache read hook produces.
	lower.readFn = func(lbn int64, count int) *netbuf.Chain {
		out := netbuf.NewChain()
		for j := 0; j < count; j++ {
			sub := lkey.StampChain(lkey.ForLBN(lbn+int64(j)), 4096)
			for _, b := range sub.Bufs() {
				out.Append(b)
			}
		}
		return out
	}
	var gotKey lkey.Key
	c.Get(42, false, func(b *Block, err error) {
		if err != nil {
			t.Errorf("Get: %v", err)
			return
		}
		if !b.Logical {
			t.Error("block not logical")
		}
		k, ok := b.Key()
		if !ok {
			t.Error("no key on logical block")
		}
		gotKey = k
		c.Unpin(b)
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if gotKey.LBN != 42 || gotKey.Flags&lkey.HasLBN == 0 {
		t.Fatalf("key = %+v", gotKey)
	}
	if node.Copies.PhysicalOps != 0 {
		t.Fatalf("logical fill performed %d physical copies", node.Copies.PhysicalOps)
	}
	if node.Copies.LogicalOps != 1 {
		t.Fatalf("logical ops = %d, want 1", node.Copies.LogicalOps)
	}
}

func TestLogicalDirtyFlushTravelsAsKeyAndRemaps(t *testing.T) {
	eng, node, lower, c := rigCache(t, 16)
	fh := lkey.FH{1, 2, 3}
	c.GetForWrite(200, false, func(b *Block, err error) {
		if err != nil {
			t.Errorf("GetForWrite: %v", err)
			return
		}
		lkey.Stamp(b.Data, lkey.ForFHO(fh, 8192))
		b.Logical = true
		c.MarkDirty(b)
		c.Unpin(b)
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	synced := false
	physBefore := node.Copies.PhysicalOps
	c.Sync(func(err error) { synced = err == nil })
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !synced {
		t.Fatal("sync failed")
	}
	if node.Copies.PhysicalOps != physBefore {
		t.Fatal("logical flush physically copied the block")
	}
	// The wire payload was the stamped key.
	k, ok := lkey.Parse(lower.writes[0].data)
	if !ok || k.Flags&lkey.HasFHO == 0 || k.Off != 8192 {
		t.Fatalf("flushed payload key = %+v ok=%v", k, ok)
	}
	// After the flush, the resident block's key gained the LBN identity.
	b, ok := c.blocks[200]
	if !ok {
		t.Fatal("block evicted unexpectedly")
	}
	k2, _ := b.Key()
	if k2.Flags&lkey.HasLBN == 0 || k2.LBN != 200 || k2.Flags&lkey.HasFHO == 0 {
		t.Fatalf("post-flush key = %+v, want dual identity", k2)
	}
}

func TestPinnedBlocksSurviveEvictionPressure(t *testing.T) {
	eng, _, _, c := rigCache(t, 2)
	var pinned *Block
	c.Get(1, false, func(b *Block, err error) {
		if err != nil {
			t.Errorf("Get: %v", err)
			return
		}
		pinned = b // deliberately not unpinned
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := int64(10); i < 20; i++ {
		c.Get(i, false, func(b *Block, err error) {
			if err == nil {
				c.Unpin(b)
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, ok := c.blocks[1]; !ok {
		t.Fatal("pinned block was evicted")
	}
	c.Unpin(pinned)
}

func TestGetForWriteSkipsLowerRead(t *testing.T) {
	eng, _, lower, c := rigCache(t, 8)
	c.GetForWrite(77, false, func(b *Block, err error) {
		if err != nil {
			t.Errorf("GetForWrite: %v", err)
			return
		}
		c.Unpin(b)
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(lower.reads) != 0 {
		t.Fatalf("no-fill write performed %d lower reads", len(lower.reads))
	}
}

func TestLowerWriteFailurePropagates(t *testing.T) {
	eng, _, lower, c := rigCache(t, 16)
	failWrite := false
	lowerErr := &failingLower{fakeLower: lower, failWrites: &failWrite}
	c2 := New(simnetNode(eng), lowerErr, 16)
	c2.GetForWrite(3, false, func(b *Block, err error) {
		if err != nil {
			t.Fatalf("GetForWrite: %v", err)
		}
		b.Data[0] = 1
		c2.MarkDirty(b)
		c2.Unpin(b)
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	failWrite = true
	var syncErr error
	c2.Sync(func(err error) { syncErr = err })
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if syncErr == nil {
		t.Fatal("Sync swallowed the lower-write failure")
	}
	// The block stays dirty so data is not lost.
	if c2.DirtyCount() != 1 {
		t.Fatalf("dirty = %d, want 1 (retryable)", c2.DirtyCount())
	}
	_ = c
}

type failingLower struct {
	*fakeLower
	failWrites *bool
}

func (f *failingLower) WriteAt(lbn int64, data *netbuf.Chain, meta bool, done func(error)) {
	if *f.failWrites {
		data.Release()
		f.eng.Schedule(1, func() { done(errInjected) })
		return
	}
	f.fakeLower.WriteAt(lbn, data, meta, done)
}

var errInjected = errors.New("injected write failure")

// simnetNode builds a bare node for auxiliary caches in this test file.
func simnetNode(eng *sim.Engine) *simnet.Node {
	return simnet.NewNode(eng, "aux", simnet.DefaultProfile())
}

func TestGetRangeRejectsBadCount(t *testing.T) {
	eng, _, _, c := rigCache(t, 8)
	called := false
	c.GetRange(0, 0, false, func(_ []*Block, err error) {
		called = true
		if err == nil {
			t.Fatal("zero-count range accepted")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !called {
		t.Fatal("callback not invoked")
	}
}

func TestDropInvalidates(t *testing.T) {
	eng, _, lower, c := rigCache(t, 8)
	c.Get(3, false, func(b *Block, err error) {
		if err == nil {
			c.Unpin(b)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	c.Drop(3)
	lower.reads = nil
	c.Get(3, false, func(b *Block, err error) {
		if err == nil {
			c.Unpin(b)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(lower.reads) != 1 {
		t.Fatalf("re-read after Drop = %d lower reads, want 1", len(lower.reads))
	}
}
