package buffercache

import (
	"sort"

	"ncache/internal/lkey"
	"ncache/internal/metrics"
	"ncache/internal/netbuf"
	"ncache/internal/sim"
)

// maxBatchBlocksDefault caps one coalesced write-back I/O when no flusher
// configuration overrides it: 64 blocks (256 KB at 4 KB blocks) keeps one
// scatter-gather write inside a single iSCSI command's comfortable range.
const maxBatchBlocksDefault = 64

// FlusherConfig tunes the background write-back flusher.
type FlusherConfig struct {
	// Interval is the dirty-hold time: a block marked dirty is written back
	// at most Interval later. The timer arms on the 0→dirty transition and
	// stays disarmed while the cache is clean, so an idle engine run
	// terminates.
	Interval sim.Duration
	// MaxBatchBlocks caps one coalesced scatter-gather write (default 64).
	MaxBatchBlocks int
	// HighWaterBlocks/LowWaterBlocks bound dirty memory: at the high
	// watermark Admit queues new work (backpressure) and an immediate flush
	// is kicked; queued admissions resume once dirty drains to the low
	// watermark (HighWaterBlocks/2 when zero). Zero high watermark disables
	// the gate.
	HighWaterBlocks int
	LowWaterBlocks  int
}

// flusher is the cache's background write-back state. All of it runs on the
// cache's node engine — its own shard under the parallel engine — so flush
// scheduling is part of the deterministic event schedule.
type flusher struct {
	cfg      FlusherConfig
	timerSet bool
	timer    sim.EventID
	kickSet  bool
	admitQ   []admitWaiter
}

// admitWaiter is one admission parked at the high watermark.
type admitWaiter struct {
	run    func()
	cancel func()
	since  sim.Time
}

// EnableFlusher turns on background write-back: dirty blocks flush in
// coalesced batches at most cfg.Interval after they are dirtied, and dirty
// memory is bounded by the watermark admission gate. Call before traffic.
func (c *Cache) EnableFlusher(cfg FlusherConfig) {
	c.fl = &flusher{cfg: cfg}
}

// SetWritebackStats shares a pipeline-counter struct (a server wires the
// same instance into its WAL so one report covers the whole dirty path).
func (c *Cache) SetWritebackStats(wb *metrics.Writeback) { c.wb = wb }

// WritebackStats returns the cache's pipeline counters.
func (c *Cache) WritebackStats() *metrics.Writeback { return c.wb }

// DirtyBlocks returns the dirty-block gauge (maintained incrementally; the
// admission gate compares it against the watermarks).
func (c *Cache) DirtyBlocks() int { return c.nDirty }

// IsDirty reports whether lbn is resident and dirty — the WAL truncation
// predicate: a journaled record may retire only when none of its blocks
// still awaits write-back.
func (c *Cache) IsDirty(lbn int64) bool {
	b, ok := c.blocks[lbn]
	return ok && b.Dirty
}

// SetFlushObserver installs a callback fired after every write-back batch
// lands successfully (the server truncates its WAL there).
func (c *Cache) SetFlushObserver(fn func()) { c.onFlush = fn }

// Admit passes one unit of new dirty work through the write-back
// backpressure gate: run fires immediately while dirty memory is below the
// high watermark (or no gate is configured), and is otherwise queued FIFO
// until the flusher drains to the low watermark. cancel fires instead of
// run if the cache is reset (crash) while queued.
func (c *Cache) Admit(run, cancel func()) {
	fl := c.fl
	if fl == nil || fl.cfg.HighWaterBlocks <= 0 || c.nDirty < fl.cfg.HighWaterBlocks {
		run()
		return
	}
	c.wb.Stalls++
	fl.admitQ = append(fl.admitQ, admitWaiter{run: run, cancel: cancel, since: c.node.Eng.Now()})
	fl.kick(c)
}

// noteDirty/noteClean maintain the dirty gauge on every transition.
func (c *Cache) noteDirty() {
	c.nDirty++
	c.wb.AddDirty(int64(c.bs))
}

func (c *Cache) noteClean() {
	c.nDirty--
	c.wb.AddDirty(-int64(c.bs))
}

// onDirty reacts to a 0→dirty block transition: arm the hold timer, and
// kick an immediate flush at the high watermark.
func (fl *flusher) onDirty(c *Cache) {
	if fl == nil {
		return
	}
	if fl.cfg.HighWaterBlocks > 0 && c.nDirty >= fl.cfg.HighWaterBlocks {
		fl.kick(c)
	}
	if fl.cfg.Interval <= 0 || fl.timerSet {
		return
	}
	fl.timerSet = true
	fl.timer = c.node.Eng.Schedule(fl.cfg.Interval, func() { fl.tick(c) })
}

// tick is the hold-timer body: flush everything dirty, then re-arm while
// dirty blocks remain in flight (their completions drain the gauge; a tick
// that finds the cache clean lets the timer die).
func (fl *flusher) tick(c *Cache) {
	fl.timerSet = false
	fl.flushNow(c)
	if c.nDirty > 0 && fl.cfg.Interval > 0 {
		fl.timerSet = true
		fl.timer = c.node.Eng.Schedule(fl.cfg.Interval, func() { fl.tick(c) })
	}
}

// kick schedules an immediate (same-instant) flush, deduplicated.
func (fl *flusher) kick(c *Cache) {
	if fl.kickSet {
		return
	}
	fl.kickSet = true
	c.node.Eng.Schedule(0, func() {
		fl.kickSet = false
		fl.flushNow(c)
	})
}

// flushNow writes back everything dirty and not already in flight.
// Background-flush errors are swallowed here: the blocks stay dirty and the
// next tick retries (synchronous callers use Sync, which reports them).
func (fl *flusher) flushNow(c *Cache) {
	dirty := c.collectDirty()
	if len(dirty) == 0 {
		return
	}
	c.flushBatches(dirty, func(error) {})
}

// batchLanded runs after every write-back batch completes: resume parked
// admissions once the gauge has drained to the low watermark (hysteresis —
// refills stop again at the high watermark).
func (fl *flusher) batchLanded(c *Cache) {
	if fl == nil || len(fl.admitQ) == 0 {
		return
	}
	low := fl.cfg.LowWaterBlocks
	if low <= 0 {
		low = fl.cfg.HighWaterBlocks / 2
	}
	if c.nDirty > low {
		return
	}
	for len(fl.admitQ) > 0 && c.nDirty < fl.cfg.HighWaterBlocks {
		w := fl.admitQ[0]
		fl.admitQ = fl.admitQ[1:]
		c.wb.StallNs += int64(c.node.Eng.Now() - w.since)
		w.run()
	}
}

// collectDirty snapshots the dirty, not-in-flight blocks in LBN order.
func (c *Cache) collectDirty() []*Block {
	var dirty []*Block
	for _, b := range c.blocks { // det: sorted (by LBN below, before any I/O is issued)
		if b.Dirty && !b.flushing {
			dirty = append(dirty, b)
		}
	}
	// Issue order decides the event schedule downstream (batch boundaries,
	// remap announcements) — runs must replay bit-for-bit.
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].LBN < dirty[j].LBN })
	return dirty
}

// maxBatchBlocks returns the configured batch cap.
func (c *Cache) maxBatchBlocks() int {
	if c.fl != nil && c.fl.cfg.MaxBatchBlocks > 0 {
		return c.fl.cfg.MaxBatchBlocks
	}
	return maxBatchBlocksDefault
}

// flushBatches coalesces dirty (LBN-sorted, non-flushing) blocks into
// adjacent-LBN scatter-gather writes and issues them concurrently; done
// fires once every batch lands, with the first error.
func (c *Cache) flushBatches(dirty []*Block, done func(error)) {
	if len(dirty) == 0 {
		done(nil)
		return
	}
	max := c.maxBatchBlocks()
	var batches [][]*Block
	for i := 0; i < len(dirty); {
		j := i + 1
		for j < len(dirty) && j-i < max &&
			dirty[j].LBN == dirty[j-1].LBN+1 && dirty[j].Meta == dirty[i].Meta {
			j++
		}
		batches = append(batches, dirty[i:j])
		i = j
	}
	remaining := len(batches)
	var failed error
	for _, batch := range batches {
		c.flushBatch(batch, func(err error) {
			if err != nil && failed == nil {
				failed = err
			}
			remaining--
			if remaining == 0 {
				done(failed)
			}
		})
	}
}

// flushBatch writes one adjacent run of dirty blocks down as a single
// scatter-gather I/O. Logical blocks travel as stamped junk (a key copy)
// that the NCache write hook below will substitute and remap; real blocks
// are physically copied into the transmit chain. One lower.WriteAt per batch
// means one remap announcement per batch on the control plane.
func (c *Cache) flushBatch(batch []*Block, done func(error)) {
	var chain *netbuf.Chain
	var cost sim.Duration
	for _, b := range batch {
		var part *netbuf.Chain
		if key, ok := b.Key(); ok {
			part = lkey.StampChainPool(c.node.BlkPool, key, c.bs)
			c.node.Copies.AddLogical()
			cost += c.LogicalCopyNs
		} else {
			var err error
			part, err = c.node.TxPool.GetChain(b.Data)
			if err != nil {
				if chain != nil {
					chain.Release()
				}
				done(err)
				return
			}
			c.node.Copies.AddPhysical(c.bs)
			cost += c.node.Cost.CopyCost(c.bs)
		}
		if chain == nil {
			chain = part
		} else {
			chain.AppendChain(part)
		}
		b.flushing = true
	}
	c.node.Charge(cost, nil)
	c.Stats.Writeback += uint64(len(batch))
	c.wb.FlushBatches++
	c.wb.FlushBlocks += uint64(len(batch))
	gen := c.gen
	c.lower.WriteAt(batch[0].LBN, chain, batch[0].Meta, func(err error) {
		if c.gen != gen {
			// The cache was reset (crash) while this write was in flight:
			// the blocks are orphans and the pipeline that issued them is
			// gone. The payload chain's lifecycle completed in the lower
			// layers as usual, so pools stay drained.
			return
		}
		for _, b := range batch {
			b.flushing = false
			if err != nil {
				continue // stays dirty; a later flush retries
			}
			if b.Dirty {
				b.Dirty = false
				c.noteClean()
			}
			// A flushed logical block now has a known storage location:
			// extend its key with the LBN identity (the fs-cache half of
			// the paper's FHO→LBN remapping).
			if key, ok := b.Key(); ok && key.Flags&lkey.HasFHO != 0 {
				lkey.Stamp(b.Data, key.WithLBN(b.LBN))
			}
		}
		if err == nil && c.onFlush != nil {
			c.onFlush()
		}
		if c.fl != nil {
			c.fl.batchLanded(c)
		}
		done(err)
	})
}

// Reset models a crash: every resident block, queued admission and armed
// timer is discarded, and completions of I/O already in flight are ignored
// (generation check). In-flight payload chains are owned by the lower
// layers and complete their lifecycle normally — pools see no leak.
func (c *Cache) Reset() {
	c.gen++
	for _, b := range c.blocks { // det: commutative (unconditional detach)
		b.pending = nil
		b.elem = nil
	}
	c.blocks = make(map[int64]*Block)
	c.lru.Init()
	if c.nDirty > 0 {
		c.wb.AddDirty(-int64(c.nDirty) * int64(c.bs))
		c.nDirty = 0
	}
	if fl := c.fl; fl != nil {
		if fl.timerSet {
			c.node.Eng.Cancel(fl.timer)
			fl.timerSet = false
		}
		q := fl.admitQ
		fl.admitQ = nil
		for _, w := range q {
			if w.cancel != nil {
				w.cancel()
			}
		}
	}
}
