// Package buffercache implements the file-system buffer/page cache of the
// pass-through server: a bounded write-back LRU of block-sized buffers over
// an iSCSI-backed block store.
//
// The cache is deliberately mechanism-only: it neither knows nor cares which
// of the paper's three configurations is running. A cached block either
// holds real payload bytes, or is a *logical block* — junk carrying an
// in-band lkey marker left by the NCache (or baseline) hooks below it. The
// cache moves logical blocks with 40-byte key copies and real blocks with
// charged physical copies; everything else follows from which hooks are
// installed. This mirrors §4.1's claim that the buffer cache itself needs
// no modification (Table 1: "buffer cache: None").
package buffercache

import (
	"container/list"
	"errors"
	"fmt"

	"ncache/internal/lkey"
	"ncache/internal/metrics"
	"ncache/internal/netbuf"
	"ncache/internal/sim"
	"ncache/internal/simnet"
)

// Lower is the block store beneath the cache. It is the data-path subset
// of storage.Volume, so any volume (single-arm, mirrored, striped, sharded)
// plugs in directly.
type Lower interface {
	BlockSize() int
	NumBlocks() int64
	// ReadAt fetches a contiguous run; meta marks file-system metadata.
	ReadAt(lbn int64, count int, meta bool, done func(*netbuf.Chain, error))
	// WriteAt stores a contiguous run; the callee owns the chain.
	WriteAt(lbn int64, data *netbuf.Chain, meta bool, done func(error))
}

// Errors surfaced by the cache.
var (
	ErrCacheClosed = errors.New("buffercache: closed")
)

// Block is one cached buffer. Callers receive pinned blocks and must Unpin
// them; a pinned block is never evicted.
type Block struct {
	LBN  int64
	Data []byte
	// Logical marks a key-carrying junk block (see package lkey).
	Logical bool
	// Dirty marks unflushed modifications.
	Dirty bool
	// Meta marks file-system metadata blocks.
	Meta bool

	pins     int
	flushing bool
	elem     *list.Element
	pending  []func(*Block, error)
	loaded   bool
}

// Key parses the block's logical key. Valid only when Logical.
func (b *Block) Key() (lkey.Key, bool) { return lkey.Parse(b.Data) }

// Cache is the bounded buffer cache.
type Cache struct {
	node     *simnet.Node
	lower    Lower
	bs       int
	capacity int

	blocks map[int64]*Block
	lru    *list.List // front = most recent

	// Stats is hit/miss/eviction accounting.
	Stats metrics.Cache
	// LogicalCopyNs is the CPU cost of moving one key (a 40-byte copy
	// plus bookkeeping).
	LogicalCopyNs sim.Duration

	// fl is the background write-back flusher (nil until EnableFlusher);
	// wb the shared dirty-pipeline counters; nDirty the dirty-block gauge.
	fl     *flusher
	wb     *metrics.Writeback
	nDirty int
	// gen is bumped by Reset (crash) so completions of I/O issued against
	// a previous incarnation are discarded instead of mutating fresh state.
	gen uint64
	// onFlush fires after every successful write-back batch (WAL
	// truncation hook).
	onFlush func()
}

// New creates a cache of capacityBlocks blocks over lower.
func New(node *simnet.Node, lower Lower, capacityBlocks int) *Cache {
	return &Cache{
		node:          node,
		lower:         lower,
		bs:            lower.BlockSize(),
		capacity:      capacityBlocks,
		blocks:        make(map[int64]*Block, capacityBlocks),
		lru:           list.New(),
		LogicalCopyNs: 150,
		wb:            &metrics.Writeback{},
	}
}

// BlockSize returns the block size in bytes.
func (c *Cache) BlockSize() int { return c.bs }

// Capacity returns the cache capacity in blocks.
func (c *Cache) Capacity() int { return c.capacity }

// Len returns the number of resident blocks.
func (c *Cache) Len() int { return len(c.blocks) }

// DirtyCount returns the number of dirty resident blocks (maintained
// incrementally on every dirty transition).
func (c *Cache) DirtyCount() int { return c.nDirty }

// touch moves a block to the MRU position.
func (c *Cache) touch(b *Block) {
	if b.elem != nil {
		c.lru.MoveToFront(b.elem)
	}
}

// insert creates a resident block entry (pinned once for the caller chain).
func (c *Cache) insert(lbn int64, meta bool) *Block {
	b := &Block{
		LBN:  lbn,
		Data: make([]byte, c.bs),
		Meta: meta,
	}
	b.elem = c.lru.PushFront(b)
	c.blocks[lbn] = b
	return b
}

// drop removes a block from the cache, settling the dirty gauge.
func (c *Cache) drop(b *Block) {
	if b.Dirty {
		b.Dirty = false
		c.noteClean()
	}
	delete(c.blocks, b.LBN)
	if b.elem != nil {
		c.lru.Remove(b.elem)
		b.elem = nil
	}
}

// evictForRoom frees LRU blocks until at most capacity blocks remain,
// flushing dirty victims. Pinned, in-flight and flushing blocks are skipped;
// under total pinning the cache temporarily exceeds capacity, as a real
// kernel does under memory pressure.
func (c *Cache) evictForRoom() {
	if c.capacity <= 0 {
		return
	}
	e := c.lru.Back()
	for e != nil && len(c.blocks) > c.capacity {
		b, ok := e.Value.(*Block)
		prev := e.Prev()
		if !ok {
			e = prev
			continue
		}
		if b.pins > 0 || b.flushing || !b.loaded {
			e = prev
			continue
		}
		if b.Dirty {
			c.flushBatches([]*Block{b}, func(error) {
				// Re-run eviction once the flush lands; the block is
				// clean (or still dirty on error) and unpinned.
				c.evictForRoom()
			})
			e = prev
			continue
		}
		c.Stats.Evictions++
		c.drop(b)
		e = prev
	}
}

// Get returns one pinned block, reading through on a miss.
func (c *Cache) Get(lbn int64, meta bool, done func(*Block, error)) {
	c.GetRange(lbn, 1, meta, func(bs []*Block, err error) {
		if err != nil {
			done(nil, err)
			return
		}
		done(bs[0], nil)
	})
}

// GetRange returns count pinned blocks starting at lbn, reading missing
// runs from the lower store in as few requests as possible (the read-ahead
// behaviour the paper tunes so the average disk request matches the NFS
// request size).
func (c *Cache) GetRange(lbn int64, count int, meta bool, done func([]*Block, error)) {
	if count <= 0 {
		done(nil, fmt.Errorf("buffercache: bad range count %d", count))
		return
	}
	out := make([]*Block, count)
	waiting := 0
	var failed error
	finishOne := func(err error) {
		if err != nil && failed == nil {
			failed = err
		}
		waiting--
		if waiting == 0 {
			if failed != nil {
				for _, b := range out {
					if b != nil {
						c.Unpin(b)
					}
				}
				done(nil, failed)
				return
			}
			done(out, nil)
		}
	}
	waiting = 1 // guard so synchronous hits don't complete early

	i := 0
	for i < count {
		cur := lbn + int64(i)
		if b, ok := c.blocks[cur]; ok {
			b.pins++
			out[i] = b
			if b.loaded {
				c.Stats.Hits++
				c.touch(b)
			} else {
				// Fill in flight: wait for it.
				idx := i
				waiting++
				b.pending = append(b.pending, func(bb *Block, err error) {
					out[idx] = bb
					finishOne(err)
				})
			}
			i++
			continue
		}
		// Miss: find the contiguous missing run.
		start := i
		for i < count {
			if _, ok := c.blocks[lbn+int64(i)]; ok {
				break
			}
			i++
		}
		runLBN := lbn + int64(start)
		runLen := i - start
		for j := 0; j < runLen; j++ {
			nb := c.insert(runLBN+int64(j), meta)
			nb.pins++
			out[start+j] = nb
		}
		c.Stats.Misses += uint64(runLen)
		waiting++
		c.readRun(runLBN, runLen, meta, finishOne)
	}
	finishOne(nil) // release the guard
	c.evictForRoom()
}

// readRun fetches one missing run and fills its resident placeholders.
// Completions arriving after a Reset (crash) are discarded: the
// placeholders are orphans and their waiters died with the server.
func (c *Cache) readRun(lbn int64, count int, meta bool, done func(error)) {
	gen := c.gen
	c.lower.ReadAt(lbn, count, meta, func(data *netbuf.Chain, err error) {
		if c.gen != gen {
			if data != nil {
				data.Release()
			}
			return
		}
		if err != nil {
			for j := 0; j < count; j++ {
				if b, ok := c.blocks[lbn+int64(j)]; ok && !b.loaded {
					waiters := b.pending
					b.pending = nil
					c.drop(b)
					for _, w := range waiters {
						w(b, err)
					}
				}
			}
			done(err)
			return
		}
		c.fillRun(gen, lbn, count, data, done)
	})
}

// fillRun moves arriving payload into the placeholder blocks: one physical
// copy for real data (charged once for the run, the Table 2 "network to
// buffer cache" stage), or per-block key copies for logical data. gen is
// the cache incarnation the read was issued under — the CPU charge defers
// the fill, and a crash in between must not populate the reborn cache.
func (c *Cache) fillRun(gen uint64, lbn int64, count int, data *netbuf.Chain, done func(error)) {
	if data.Len() < count*c.bs {
		data.Release()
		done(fmt.Errorf("buffercache: short read: %d bytes for %d blocks", data.Len(), count))
		return
	}
	physBytes := 0
	logical := 0
	type fill struct {
		b     *Block
		off   int
		isKey bool
	}
	fills := make([]fill, 0, count)
	var head [lkey.Size]byte
	for j := 0; j < count; j++ {
		b, ok := c.blocks[lbn+int64(j)]
		if !ok {
			continue
		}
		// Peek for a key marker at the block's offset without carving a
		// descriptor clone out of the run.
		off := j * c.bs
		n := data.GatherRange(off, head[:])
		_, isKey := lkey.Parse(head[:n])
		fills = append(fills, fill{b: b, off: off, isKey: isKey})
		if isKey {
			logical++
		} else {
			physBytes += c.bs
		}
	}
	var cost sim.Duration
	if physBytes > 0 {
		c.node.Copies.AddPhysical(physBytes)
		cost += c.node.Cost.CopyCost(physBytes)
	}
	for k := 0; k < logical; k++ {
		c.node.Copies.AddLogical()
		cost += c.LogicalCopyNs
	}
	c.node.Charge(cost, func() {
		if c.gen != gen {
			data.Release()
			return
		}
		for _, f := range fills {
			if f.isKey {
				data.GatherRange(f.off, f.b.Data[:lkey.Size])
				f.b.Logical = true
			} else {
				data.GatherRange(f.off, f.b.Data)
				f.b.Logical = false
			}
			f.b.loaded = true
			waiters := f.b.pending
			f.b.pending = nil
			for _, w := range waiters {
				w(f.b, nil)
			}
		}
		data.Release()
		done(nil)
	})
}

// GetForWrite returns a pinned block about to be fully overwritten: if
// absent it is created without reading the lower store (no-fill), the
// optimization every kernel applies to whole-block writes.
func (c *Cache) GetForWrite(lbn int64, meta bool, done func(*Block, error)) {
	if b, ok := c.blocks[lbn]; ok {
		b.pins++
		if b.loaded {
			c.Stats.Hits++
			c.touch(b)
			done(b, nil)
			return
		}
		b.pending = append(b.pending, done)
		return
	}
	b := c.insert(lbn, meta)
	b.pins++
	b.loaded = true
	c.Stats.Misses++
	c.evictForRoom()
	done(b, nil)
}

// MarkDirty records a modification to a pinned block. The 0→dirty
// transition feeds the dirty gauge and arms the background flusher.
func (c *Cache) MarkDirty(b *Block) {
	if !b.Dirty {
		b.Dirty = true
		c.noteDirty()
		c.fl.onDirty(c)
	}
	c.touch(b)
}

// Unpin releases a caller's pin.
func (c *Cache) Unpin(b *Block) {
	if b.pins > 0 {
		b.pins--
	}
	c.evictForRoom()
}

// Drop invalidates a block (file truncation/removal, or a remote-remap
// invalidation). Dirty contents are discarded. A mid-flush block is
// detached immediately — cancel-or-complete: the in-flight write finishes
// against the orphaned buffer (its completion holds the pointer, not the
// map entry), future lookups miss, and the invalidation resolves now
// rather than spinning behind a batched flush. Only a pinned block (a read
// composing a reply from it) still returns false; callers that must win
// retry after the pin drains.
func (c *Cache) Drop(lbn int64) bool {
	b, ok := c.blocks[lbn]
	if !ok {
		return true
	}
	if b.pins > 0 {
		return false
	}
	c.drop(b)
	return true
}

// Sync flushes every dirty block in coalesced adjacent-LBN batches and
// calls done when all writes land.
func (c *Cache) Sync(done func(error)) {
	c.flushBatches(c.collectDirty(), done)
}
