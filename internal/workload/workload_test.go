package workload

import (
	"testing"
	"testing/quick"

	"ncache/internal/nfs"
	"ncache/internal/sim"
)

func TestZipfRankOrdering(t *testing.T) {
	z := NewZipf(sim.NewRNG(1), 100, 1.0)
	counts := make([]int, 100)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// Rank 0 is the most popular; popularity decays monotonically in
	// aggregate (allow sampling noise on adjacent ranks).
	if counts[0] < counts[10] || counts[10] < counts[50] {
		t.Fatalf("zipf not decaying: c0=%d c10=%d c50=%d", counts[0], counts[10], counts[50])
	}
	// For s=1, p(0)/p(9) = 10; sampled ratio should be in the ballpark.
	ratio := float64(counts[0]) / float64(counts[9]+1)
	if ratio < 5 || ratio > 20 {
		t.Fatalf("p(0)/p(9) = %.1f, want ~10", ratio)
	}
}

func TestZipfBounds(t *testing.T) {
	f := func(seed uint64, n16 uint16) bool {
		n := int(n16)%500 + 1
		z := NewZipf(sim.NewRNG(seed), n, 0.8)
		for i := 0; i < 200; i++ {
			if v := z.Next(); v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildPageSet(t *testing.T) {
	ps := BuildPageSet(10 << 20)
	if ps.TotalBytes() < 10<<20 {
		t.Fatalf("total = %d, want >= 10MB", ps.TotalBytes())
	}
	if len(ps.Names) != len(ps.Sizes) {
		t.Fatal("names/sizes mismatch")
	}
	seen := map[string]bool{}
	for _, n := range ps.Names {
		if seen[n] {
			t.Fatalf("duplicate page name %q", n)
		}
		seen[n] = true
	}
	// The class mix mean is what the docs promise (~75 KB).
	mean := WebPageMeanSize()
	if mean < 60<<10 || mean > 90<<10 {
		t.Fatalf("mean page size = %d, want ≈75KB", mean)
	}
}

func TestItoa(t *testing.T) {
	for v, want := range map[int]string{0: "0", 7: "7", 42: "42", 12345: "12345"} {
		if got := itoa(v); got != want {
			t.Fatalf("itoa(%d) = %q", v, got)
		}
	}
}

func TestGenSequentialRead(t *testing.T) {
	tr := GenSequentialRead(nfs.RootFH(), 1<<20, 64*1024)
	if len(tr.Ops) != 16 {
		t.Fatalf("ops = %d, want 16", len(tr.Ops))
	}
	for i, op := range tr.Ops {
		if op.Kind != OpRead || op.Off != uint64(i)*64*1024 || op.Len != 64*1024 {
			t.Fatalf("op %d = %+v", i, op)
		}
	}
}

func TestGenHotSetStaysInRegion(t *testing.T) {
	tr := GenHotSet(nfs.RootFH(), 5<<20, 8192, 1000, 3)
	for _, op := range tr.Ops {
		if op.Off+uint64(op.Len) > 5<<20 {
			t.Fatalf("op beyond hot set: %+v", op)
		}
		if op.Off%8192 != 0 {
			t.Fatalf("unaligned op: %+v", op)
		}
	}
}

func TestGenMixedWriteFraction(t *testing.T) {
	tr := GenMixed(nfs.RootFH(), 1<<20, 4096, 10000, 30, 5)
	writes := 0
	for _, op := range tr.Ops {
		if op.Kind == OpWrite {
			writes++
		}
	}
	pct := writes * 100 / len(tr.Ops)
	if pct < 25 || pct > 35 {
		t.Fatalf("write fraction = %d%%, want ~30%%", pct)
	}
}

func TestGenTracesDeterministic(t *testing.T) {
	a := GenMixed(nfs.RootFH(), 1<<20, 4096, 100, 30, 5)
	b := GenMixed(nfs.RootFH(), 1<<20, 4096, 100, 30, 5)
	for i := range a.Ops {
		if a.Ops[i] != b.Ops[i] {
			t.Fatal("traces differ for same seed")
		}
	}
}

func TestSFSSizeDistribution(t *testing.T) {
	l := &SFSLoad{Cfg: SFSConfig{}}
	l.rng = sim.NewRNG(9)
	counts := map[int]int{}
	for i := 0; i < 10000; i++ {
		counts[l.pickSize()]++
	}
	if counts[4096] < counts[8192] || counts[8192] < counts[16384] || counts[16384] < counts[32768] {
		t.Fatalf("size distribution not dominated by small requests: %v", counts)
	}
	for s := range counts {
		switch s {
		case 4096, 8192, 16384, 32768:
		default:
			t.Fatalf("unexpected size %d", s)
		}
	}
}

func TestMeasurementMath(t *testing.T) {
	m := Measurement{Elapsed: sim.Second, Ops: 500, Bytes: 2_000_000}
	if m.OpsPerSec() != 500 {
		t.Fatalf("ops/s = %v", m.OpsPerSec())
	}
	if m.Throughput() != 2_000_000 {
		t.Fatalf("throughput = %v", m.Throughput())
	}
	zero := Measurement{}
	if zero.OpsPerSec() != 0 || zero.Throughput() != 0 {
		t.Fatal("zero measurement not zero")
	}
}
