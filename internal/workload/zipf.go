// Package workload implements the paper's load generators: the all-miss and
// all-hit micro-benchmarks (synthetic traces driven by an Active Trace
// Player analogue, §5.3), an SFS-like NFS macro-benchmark, and a
// SPECweb99-like static web load with Zipf-distributed page popularity.
package workload

import (
	"math"

	"ncache/internal/sim"
)

// Zipf samples ranks 1..N with probability proportional to 1/rank^s,
// matching the web-access popularity model of [Breslau et al. 1999] the
// paper cites for SPECweb99.
type Zipf struct {
	rng *sim.RNG
	// cdf[i] is the cumulative probability of ranks 0..i.
	cdf []float64
}

// NewZipf builds a sampler over n items with exponent s (s=0.8–1.0 is
// typical for web traffic).
func NewZipf(rng *sim.RNG, n int, s float64) *Zipf {
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{rng: rng, cdf: cdf}
}

// Next returns an item index in [0, n), rank-0 most popular.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
