package workload

import (
	"ncache/internal/netbuf"
	"ncache/internal/nfs"
)

// junkChain draws an n-byte zeroed chain from the client host's registered
// block pool: synthetic write bodies are identity-free junk (§5.1), so the
// testbed's clients are copy-free — the payload is born in pooled network
// buffers and handed straight to the zero-copy WRITE path, never staged
// through a byte slice. The pool recycles the buffers when the RPC layer
// releases them, keeping the steady-state client allocation-free.
func junkChain(c *nfs.Client, n int) *netbuf.Chain {
	ch, err := c.Node().BlkPool.GetZeroChain(n)
	if err != nil {
		// Unreachable on the unbounded default pools; allocate rather
		// than drop the op if a test installs a bounded pool.
		b := netbuf.New(0, n)
		_ = b.Put(n)
		ch = netbuf.ChainOf(b)
	}
	ch.SetOwner("workload.write")
	return ch
}
