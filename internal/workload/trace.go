package workload

import (
	"ncache/internal/netbuf"
	"ncache/internal/nfs"
	"ncache/internal/sim"
)

// OpKind classifies a trace record.
type OpKind int

// Trace operation kinds.
const (
	OpRead OpKind = iota + 1
	OpWrite
	OpGetattr
)

// TraceOp is one record of a synthetic NFS trace, the format our Active
// Trace Player analogue replays (the paper generates its micro-benchmarks
// "by means of synthetic traces and an Active Trace Player" [20]).
type TraceOp struct {
	Kind OpKind
	Off  uint64
	Len  int
}

// Trace is a replayable operation sequence against one file.
type Trace struct {
	FH  nfs.FH
	Ops []TraceOp
}

// GenSequentialRead builds the all-miss trace: a single streaming pass.
func GenSequentialRead(fh nfs.FH, fileSize uint64, reqSize int) Trace {
	t := Trace{FH: fh}
	for off := uint64(0); off+uint64(reqSize) <= fileSize; off += uint64(reqSize) {
		t.Ops = append(t.Ops, TraceOp{Kind: OpRead, Off: off, Len: reqSize})
	}
	return t
}

// GenHotSet builds the all-hit trace: n random reads within a hot region.
func GenHotSet(fh nfs.FH, hotBytes uint64, reqSize, n int, seed uint64) Trace {
	rng := sim.NewRNG(seed)
	t := Trace{FH: fh}
	span := hotBytes / uint64(reqSize)
	if span == 0 {
		span = 1
	}
	for i := 0; i < n; i++ {
		off := uint64(rng.Int63n(int64(span))) * uint64(reqSize)
		t.Ops = append(t.Ops, TraceOp{Kind: OpRead, Off: off, Len: reqSize})
	}
	return t
}

// GenMixed builds a read/write mix trace over the file.
func GenMixed(fh nfs.FH, fileSize uint64, reqSize, n int, writePct int, seed uint64) Trace {
	rng := sim.NewRNG(seed)
	t := Trace{FH: fh}
	span := fileSize / uint64(reqSize)
	if span == 0 {
		span = 1
	}
	for i := 0; i < n; i++ {
		kind := OpRead
		if rng.Intn(100) < writePct {
			kind = OpWrite
		}
		off := uint64(rng.Int63n(int64(span))) * uint64(reqSize)
		t.Ops = append(t.Ops, TraceOp{Kind: kind, Off: off, Len: reqSize})
	}
	return t
}

// TracePlayer replays a trace closed-loop with the given concurrency,
// looping when it reaches the end (so it can drive steady-state windows).
type TracePlayer struct {
	Clients     []*nfs.Client
	Trace       Trace
	Concurrency int
	Loop        bool

	cursor  int
	ops     uint64
	bytes   uint64
	errs    uint64
	stopped bool
	// Done fires once when a non-looping replay exhausts the trace and
	// all workers have drained.
	Done     func()
	inFlight int
}

var _ Load = (*TracePlayer)(nil)

// Start implements Load.
func (p *TracePlayer) Start() {
	if p.Concurrency <= 0 {
		p.Concurrency = 4
	}
	for _, c := range p.Clients {
		for w := 0; w < p.Concurrency; w++ {
			p.issue(c)
		}
	}
}

// Stop implements Load.
func (p *TracePlayer) Stop() { p.stopped = true }

// Counters implements Load.
func (p *TracePlayer) Counters() (uint64, uint64, uint64) {
	return p.ops, p.bytes, p.errs
}

// nextOp fetches the next trace record.
func (p *TracePlayer) nextOp() (TraceOp, bool) {
	if len(p.Trace.Ops) == 0 {
		return TraceOp{}, false
	}
	if p.cursor >= len(p.Trace.Ops) {
		if !p.Loop {
			return TraceOp{}, false
		}
		p.cursor = 0
	}
	op := p.Trace.Ops[p.cursor]
	p.cursor++
	return op, true
}

// issue replays one record and chains the next.
func (p *TracePlayer) issue(c *nfs.Client) {
	if p.stopped {
		return
	}
	op, ok := p.nextOp()
	if !ok {
		if p.inFlight == 0 && p.Done != nil {
			done := p.Done
			p.Done = nil
			done()
		}
		return
	}
	p.inFlight++
	finish := func(n int, err error) {
		p.inFlight--
		if err != nil {
			p.errs++
		} else {
			p.ops++
			p.bytes += uint64(n)
		}
		p.issue(c)
	}
	switch op.Kind {
	case OpWrite:
		c.Write(p.Trace.FH, op.Off, junkChain(c, op.Len), func(n int, _ nfs.Attr, err error) {
			finish(n, err)
		})
	case OpGetattr:
		c.Getattr(p.Trace.FH, func(_ nfs.Attr, err error) { finish(0, err) })
	default:
		c.Read(p.Trace.FH, op.Off, op.Len, func(data *netbuf.Chain, _ nfs.Attr, err error) {
			n := 0
			if data != nil {
				n = data.Len()
				data.Release()
			}
			finish(n, err)
		})
	}
}
