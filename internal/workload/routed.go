package workload

import (
	"sync/atomic"

	"ncache/internal/netbuf"
	"ncache/internal/nfs"
	"ncache/internal/sim"
	"ncache/internal/trace"
)

// RouteFn answers the NFS client that owns a file handle — the scale-out
// cluster's client-side routing (passthru.ScaleClient.Route matches). done
// may fire synchronously on a route-cache hit.
type RouteFn func(fh nfs.FH, done func(*nfs.Client, error))

// RoutedMixLoad is the scale-out closed-loop workload: many client
// processes, each picking files from a shared set, resolving the owning
// front-end server per operation through its host's routing cache, and
// issuing a read/write mix. Every (worker, step) draws from one seeded RNG
// stream per route, so runs replay bit-for-bit.
type RoutedMixLoad struct {
	// Routes is one routing function per client process.
	Routes []RouteFn
	// Files is the shared working set (handles span every server).
	Files []nfs.FH
	// FileSize bounds request offsets; RequestSize is the read size.
	FileSize    uint64
	RequestSize int
	// WriteSize is the write request size (0 = RequestSize); WritePct is
	// the write percentage of the mix.
	WriteSize int
	WritePct  int
	// Concurrency is the worker count per route (client process).
	Concurrency int
	Seed        uint64
	// Tracer, when set, opens a "read"/"write" span per request. Nil-safe.
	Tracer *trace.Tracer

	rngs []*sim.RNG
	// Counters are atomics: each route's completions land on its own
	// client host's shard. The sums are commutative, so totals replay
	// identically for any worker count.
	ops     uint64
	bytes   uint64
	errs    uint64
	routeEs uint64
	stopped bool
}

var _ Load = (*RoutedMixLoad)(nil)

// SetTracer installs per-request span tracing.
func (l *RoutedMixLoad) SetTracer(t *trace.Tracer) { l.Tracer = t }

// Start implements Load.
func (l *RoutedMixLoad) Start() {
	if l.Concurrency <= 0 {
		l.Concurrency = 4
	}
	if l.WriteSize <= 0 {
		l.WriteSize = l.RequestSize
	}
	l.rngs = make([]*sim.RNG, len(l.Routes))
	for i := range l.Routes {
		l.rngs[i] = sim.NewRNG(l.Seed + uint64(i)*0x9e3779b9)
		for w := 0; w < l.Concurrency; w++ {
			l.issue(i)
		}
	}
}

// Stop implements Load.
func (l *RoutedMixLoad) Stop() { l.stopped = true }

// Counters implements Load.
func (l *RoutedMixLoad) Counters() (uint64, uint64, uint64) {
	return atomic.LoadUint64(&l.ops), atomic.LoadUint64(&l.bytes), atomic.LoadUint64(&l.errs)
}

// RouteErrors counts operations that failed at the routing step.
func (l *RoutedMixLoad) RouteErrors() uint64 { return atomic.LoadUint64(&l.routeEs) }

// issue resolves a route and runs one operation, then chains the next.
func (l *RoutedMixLoad) issue(route int) {
	if l.stopped {
		return
	}
	rng := l.rngs[route]
	fh := l.Files[rng.Intn(len(l.Files))]
	isWrite := rng.Intn(100) < l.WritePct
	size := l.RequestSize
	if isWrite {
		size = l.WriteSize
	}
	span := l.FileSize / uint64(size)
	if span == 0 {
		span = 1
	}
	// Align offsets to the request size so writes overwrite whole blocks
	// in place (no read-modify-write tail).
	off := uint64(rng.Int63n(int64(span))) * uint64(size)

	finish := func(n int, err error) {
		if err != nil {
			atomic.AddUint64(&l.errs, 1)
		} else {
			atomic.AddUint64(&l.ops, 1)
			atomic.AddUint64(&l.bytes, uint64(n))
		}
		l.issue(route)
	}
	l.Routes[route](fh, func(c *nfs.Client, err error) {
		if err != nil {
			atomic.AddUint64(&l.routeEs, 1)
			finish(0, err)
			return
		}
		if isWrite {
			sp := spanOn(l.Tracer, c, "write")
			c.Write(fh, off, junkChain(c, size), func(n int, _ nfs.Attr, err error) {
				sp.Finish()
				finish(n, err)
			})
			return
		}
		sp := spanOn(l.Tracer, c, "read")
		c.Read(fh, off, size, func(data *netbuf.Chain, _ nfs.Attr, err error) {
			sp.Finish()
			n := 0
			if data != nil {
				n = data.Len()
				data.Release()
			}
			finish(n, err)
		})
	})
}
