package workload

import (
	"fmt"

	"ncache/internal/sim"
)

// Runner measures a closed-loop workload in steady state: start the
// workers, run a warm-up, reset all counters, run the measurement window,
// then stop. Throughput and utilization are computed over the window only,
// as the paper's steady-state measurements are.
type Runner struct {
	Eng    *sim.Engine
	Warmup sim.Duration
	Window sim.Duration
}

// Measurement is the window-relative outcome.
type Measurement struct {
	Elapsed sim.Duration
	Ops     uint64
	Bytes   uint64
	Errors  uint64
}

// Throughput returns bytes per second over the window.
func (m Measurement) Throughput() float64 {
	if m.Elapsed <= 0 {
		return 0
	}
	return float64(m.Bytes) / m.Elapsed.Seconds()
}

// OpsPerSec returns operations per second over the window.
func (m Measurement) OpsPerSec() float64 {
	if m.Elapsed <= 0 {
		return 0
	}
	return float64(m.Ops) / m.Elapsed.Seconds()
}

// Load is a closed-loop workload.
type Load interface {
	// Start launches the workers; they re-issue until Stop.
	Start()
	// Stop prevents further issues (in-flight operations drain).
	Stop()
	// Counters reports cumulative ops/bytes/errors completed so far.
	Counters() (ops, bytes, errs uint64)
}

// Run drives a load through warm-up and measurement. resetStats is invoked
// at the window start and sample at the window end (before the drain), so
// resource utilization reflects steady state only.
func (r *Runner) Run(load Load, resetStats, sample func()) (Measurement, error) {
	load.Start()
	if err := r.Eng.RunFor(r.Warmup); err != nil {
		return Measurement{}, fmt.Errorf("warmup: %w", err)
	}
	ops0, bytes0, errs0 := load.Counters()
	if resetStats != nil {
		resetStats()
	}
	if err := r.Eng.RunFor(r.Window); err != nil {
		return Measurement{}, fmt.Errorf("window: %w", err)
	}
	ops1, bytes1, errs1 := load.Counters()
	if sample != nil {
		sample()
	}
	load.Stop()
	// Drain in-flight work so the cluster can be reused or inspected.
	if err := r.Eng.Run(); err != nil {
		return Measurement{}, fmt.Errorf("drain: %w", err)
	}
	return Measurement{
		Elapsed: r.Window,
		Ops:     ops1 - ops0,
		Bytes:   bytes1 - bytes0,
		Errors:  errs1 - errs0,
	}, nil
}
