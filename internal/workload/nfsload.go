package workload

import (
	"sync/atomic"

	"ncache/internal/netbuf"
	"ncache/internal/nfs"
	"ncache/internal/sim"
	"ncache/internal/trace"
)

// AccessPattern selects how read offsets advance.
type AccessPattern int

// Patterns for the micro-benchmarks (§5.3).
const (
	// Sequential streams through the file and wraps: with a file much
	// larger than the server caches this is the all-miss workload.
	Sequential AccessPattern = iota + 1
	// HotSet cycles uniformly through a small region: after warm-up every
	// request hits in cache — the all-hit workload.
	HotSet
)

// patState is one issuing stream's private pattern state. A sequential run
// shares a single state across all clients (the classic behaviour); a
// sharded run gives each client its own, so the stream a client draws is
// owned by its node's shard and replays identically for any worker count.
type patState struct {
	rng  *sim.RNG
	next uint64
}

// perClientStates builds the pattern-state table for a load: shared on a
// sequential engine, per-client (with seeds derived from the client index,
// independent of execution order) on a sharded one.
func perClientStates(clients []*nfs.Client, shared *sim.RNG, base uint64) []*patState {
	states := make([]*patState, len(clients))
	sharded := len(clients) > 0 && clients[0].Node().Eng.Sharded()
	if !sharded {
		st := &patState{rng: shared}
		for i := range states {
			states[i] = st
		}
		return states
	}
	for i := range states {
		states[i] = &patState{rng: sim.NewRNG(base ^ uint64(i+1)*0x9e3779b97f4a7c15)}
	}
	return states
}

// spanOn opens a span on the client's own shard (on a sequential engine
// this is the tracer's engine, exactly the old Begin).
func spanOn(t *trace.Tracer, c *nfs.Client, op string) *trace.Span {
	return t.BeginOn(c.Node().Eng, op)
}

// NFSReadLoad is a closed-loop NFS read generator: Concurrency workers per
// client, each issuing the next read as soon as the previous completes
// (the paper adjusts the number of NFS daemons / outstanding requests the
// same way).
type NFSReadLoad struct {
	Clients     []*nfs.Client
	FH          nfs.FH
	FileSize    uint64
	RequestSize int
	Pattern     AccessPattern
	Concurrency int // workers per client
	RNG         *sim.RNG
	// Tracer, when set, opens a span per request. Nil-safe.
	Tracer *trace.Tracer

	// Counters are atomics: completions land on each client's shard.
	ops, bytes, errs uint64
	stopped          bool
	states           []*patState
}

var _ Load = (*NFSReadLoad)(nil)

// SetTracer installs per-request span tracing.
func (l *NFSReadLoad) SetTracer(t *trace.Tracer) { l.Tracer = t }

// Start implements Load.
func (l *NFSReadLoad) Start() {
	if l.Concurrency <= 0 {
		l.Concurrency = 4
	}
	if l.RNG == nil {
		l.RNG = sim.NewRNG(1)
	}
	l.states = perClientStates(l.Clients, l.RNG, 1)
	for i := range l.Clients {
		for w := 0; w < l.Concurrency; w++ {
			l.issue(i)
		}
	}
}

// Stop implements Load.
func (l *NFSReadLoad) Stop() { l.stopped = true }

// Counters implements Load.
func (l *NFSReadLoad) Counters() (uint64, uint64, uint64) {
	return atomic.LoadUint64(&l.ops), atomic.LoadUint64(&l.bytes), atomic.LoadUint64(&l.errs)
}

// nextOffset advances the access pattern of one issuing stream.
func (l *NFSReadLoad) nextOffset(st *patState) uint64 {
	req := uint64(l.RequestSize)
	span := l.FileSize / req
	if span == 0 {
		span = 1
	}
	var off uint64
	switch l.Pattern {
	case HotSet:
		off = uint64(st.rng.Int63n(int64(span))) * req
	default:
		off = (st.next % span) * req
		st.next++
	}
	return off
}

// issue sends one read and chains the next.
func (l *NFSReadLoad) issue(i int) {
	if l.stopped {
		return
	}
	c := l.Clients[i]
	off := l.nextOffset(l.states[i])
	sp := spanOn(l.Tracer, c, "read")
	c.Read(l.FH, off, l.RequestSize, func(data *netbuf.Chain, _ nfs.Attr, err error) {
		sp.Finish()
		if err != nil {
			atomic.AddUint64(&l.errs, 1)
		} else {
			atomic.AddUint64(&l.ops, 1)
			atomic.AddUint64(&l.bytes, uint64(data.Len()))
			data.Release()
		}
		l.issue(i)
	})
}

// NFSWriteLoad is a closed-loop NFS write generator.
type NFSWriteLoad struct {
	Clients     []*nfs.Client
	FH          nfs.FH
	FileSize    uint64
	RequestSize int
	Concurrency int
	RNG         *sim.RNG
	// Tracer, when set, opens a span per request. Nil-safe.
	Tracer *trace.Tracer

	// Counters are atomics: completions land on each client's shard.
	ops, bytes, errs uint64
	stopped          bool
	states           []*patState
}

var _ Load = (*NFSWriteLoad)(nil)

// SetTracer installs per-request span tracing.
func (l *NFSWriteLoad) SetTracer(t *trace.Tracer) { l.Tracer = t }

// Start implements Load.
func (l *NFSWriteLoad) Start() {
	if l.Concurrency <= 0 {
		l.Concurrency = 4
	}
	if l.RNG == nil {
		l.RNG = sim.NewRNG(2)
	}
	l.states = perClientStates(l.Clients, l.RNG, 2)
	for i := range l.Clients {
		for w := 0; w < l.Concurrency; w++ {
			l.issue(i)
		}
	}
}

// Stop implements Load.
func (l *NFSWriteLoad) Stop() { l.stopped = true }

// Counters implements Load.
func (l *NFSWriteLoad) Counters() (uint64, uint64, uint64) {
	return atomic.LoadUint64(&l.ops), atomic.LoadUint64(&l.bytes), atomic.LoadUint64(&l.errs)
}

// issue sends one write and chains the next.
func (l *NFSWriteLoad) issue(i int) {
	if l.stopped {
		return
	}
	c := l.Clients[i]
	st := l.states[i]
	req := uint64(l.RequestSize)
	span := l.FileSize / req
	if span == 0 {
		span = 1
	}
	off := (st.next % span) * req
	st.next++
	sp := spanOn(l.Tracer, c, "write")
	c.Write(l.FH, off, junkChain(c, l.RequestSize), func(n int, _ nfs.Attr, err error) {
		sp.Finish()
		if err != nil {
			atomic.AddUint64(&l.errs, 1)
		} else {
			atomic.AddUint64(&l.ops, 1)
			atomic.AddUint64(&l.bytes, uint64(n))
		}
		l.issue(i)
	})
}
