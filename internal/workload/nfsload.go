package workload

import (
	"ncache/internal/netbuf"
	"ncache/internal/nfs"
	"ncache/internal/sim"
	"ncache/internal/trace"
)

// AccessPattern selects how read offsets advance.
type AccessPattern int

// Patterns for the micro-benchmarks (§5.3).
const (
	// Sequential streams through the file and wraps: with a file much
	// larger than the server caches this is the all-miss workload.
	Sequential AccessPattern = iota + 1
	// HotSet cycles uniformly through a small region: after warm-up every
	// request hits in cache — the all-hit workload.
	HotSet
)

// NFSReadLoad is a closed-loop NFS read generator: Concurrency workers per
// client, each issuing the next read as soon as the previous completes
// (the paper adjusts the number of NFS daemons / outstanding requests the
// same way).
type NFSReadLoad struct {
	Clients     []*nfs.Client
	FH          nfs.FH
	FileSize    uint64
	RequestSize int
	Pattern     AccessPattern
	Concurrency int // workers per client
	RNG         *sim.RNG
	// Tracer, when set, opens a span per request. Nil-safe.
	Tracer *trace.Tracer

	ops, bytes, errs uint64
	stopped          bool
	next             uint64
}

var _ Load = (*NFSReadLoad)(nil)

// SetTracer installs per-request span tracing.
func (l *NFSReadLoad) SetTracer(t *trace.Tracer) { l.Tracer = t }

// Start implements Load.
func (l *NFSReadLoad) Start() {
	if l.Concurrency <= 0 {
		l.Concurrency = 4
	}
	if l.RNG == nil {
		l.RNG = sim.NewRNG(1)
	}
	for _, c := range l.Clients {
		for w := 0; w < l.Concurrency; w++ {
			l.issue(c)
		}
	}
}

// Stop implements Load.
func (l *NFSReadLoad) Stop() { l.stopped = true }

// Counters implements Load.
func (l *NFSReadLoad) Counters() (uint64, uint64, uint64) {
	return l.ops, l.bytes, l.errs
}

// nextOffset advances the access pattern.
func (l *NFSReadLoad) nextOffset() uint64 {
	req := uint64(l.RequestSize)
	span := l.FileSize / req
	if span == 0 {
		span = 1
	}
	var off uint64
	switch l.Pattern {
	case HotSet:
		off = uint64(l.RNG.Int63n(int64(span))) * req
	default:
		off = (l.next % span) * req
		l.next++
	}
	return off
}

// issue sends one read and chains the next.
func (l *NFSReadLoad) issue(c *nfs.Client) {
	if l.stopped {
		return
	}
	off := l.nextOffset()
	sp := l.Tracer.Begin("read")
	c.Read(l.FH, off, l.RequestSize, func(data *netbuf.Chain, _ nfs.Attr, err error) {
		sp.Finish()
		if err != nil {
			l.errs++
		} else {
			l.ops++
			l.bytes += uint64(data.Len())
			data.Release()
		}
		l.issue(c)
	})
}

// NFSWriteLoad is a closed-loop NFS write generator.
type NFSWriteLoad struct {
	Clients     []*nfs.Client
	FH          nfs.FH
	FileSize    uint64
	RequestSize int
	Concurrency int
	RNG         *sim.RNG
	// Tracer, when set, opens a span per request. Nil-safe.
	Tracer *trace.Tracer

	ops, bytes, errs uint64
	stopped          bool
	next             uint64
}

var _ Load = (*NFSWriteLoad)(nil)

// SetTracer installs per-request span tracing.
func (l *NFSWriteLoad) SetTracer(t *trace.Tracer) { l.Tracer = t }

// Start implements Load.
func (l *NFSWriteLoad) Start() {
	if l.Concurrency <= 0 {
		l.Concurrency = 4
	}
	if l.RNG == nil {
		l.RNG = sim.NewRNG(2)
	}
	for _, c := range l.Clients {
		for w := 0; w < l.Concurrency; w++ {
			l.issue(c)
		}
	}
}

// Stop implements Load.
func (l *NFSWriteLoad) Stop() { l.stopped = true }

// Counters implements Load.
func (l *NFSWriteLoad) Counters() (uint64, uint64, uint64) {
	return l.ops, l.bytes, l.errs
}

// issue sends one write and chains the next.
func (l *NFSWriteLoad) issue(c *nfs.Client) {
	if l.stopped {
		return
	}
	req := uint64(l.RequestSize)
	span := l.FileSize / req
	if span == 0 {
		span = 1
	}
	off := (l.next % span) * req
	l.next++
	sp := l.Tracer.Begin("write")
	c.Write(l.FH, off, junkChain(c, l.RequestSize), func(n int, _ nfs.Attr, err error) {
		sp.Finish()
		if err != nil {
			l.errs++
		} else {
			l.ops++
			l.bytes += uint64(n)
		}
		l.issue(c)
	})
}
