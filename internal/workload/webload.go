package workload

import (
	"ncache/internal/passthru"
	"ncache/internal/sim"
)

// WebPageClasses is the SPECweb99-like page-size mix (§5.3: mean accessed
// page ≈ 75 KB). Weights are access-frequency weights.
var WebPageClasses = []struct {
	Size   int
	Weight int
}{
	{4 * 1024, 25},
	{16 * 1024, 30},
	{64 * 1024, 28},
	{256 * 1024, 16},
	{1024 * 1024, 1},
}

// WebPageMeanSize returns the access-weighted mean page size of the class
// mix.
func WebPageMeanSize() int {
	total, sum := 0, 0
	for _, c := range WebPageClasses {
		total += c.Weight
		sum += c.Size * c.Weight
	}
	return sum / total
}

// PageSet describes a generated working set: file names (in the fs root)
// and their sizes, access-ranked (index 0 most popular under Zipf).
type PageSet struct {
	Names []string
	Sizes []int
}

// TotalBytes returns the working-set footprint.
func (p PageSet) TotalBytes() int64 {
	var n int64
	for _, s := range p.Sizes {
		n += int64(s)
	}
	return n
}

// BuildPageSet sizes a page population to approximately totalBytes,
// interleaving the classes so popularity ranks span all sizes (as
// SPECweb99's class rotation does).
func BuildPageSet(totalBytes int64) PageSet {
	var out PageSet
	var acc int64
	i := 0
	for acc < totalBytes {
		class := WebPageClasses[i%len(WebPageClasses)]
		name := "page-" + itoa(i)
		out.Names = append(out.Names, name)
		out.Sizes = append(out.Sizes, class.Size)
		acc += int64(class.Size)
		i++
	}
	return out
}

// itoa is a tiny allocation-free int formatter for page names.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// WebLoad drives Zipf-distributed GETs over persistent connections, one
// outstanding request per connection (SPECweb99's simultaneous-connection
// model).
type WebLoad struct {
	Conns []*passthru.HTTPConn
	Pages PageSet
	// ZipfS is the popularity exponent (≈1 per [7]).
	ZipfS float64
	Seed  uint64

	zipf    *Zipf
	ops     uint64
	bytes   uint64
	errs    uint64
	stopped bool
}

var _ Load = (*WebLoad)(nil)

// Start implements Load.
func (l *WebLoad) Start() {
	if l.ZipfS == 0 {
		l.ZipfS = 1.0
	}
	l.zipf = NewZipf(sim.NewRNG(l.Seed+11), len(l.Pages.Names), l.ZipfS)
	for _, c := range l.Conns {
		l.issue(c)
	}
}

// Stop implements Load.
func (l *WebLoad) Stop() { l.stopped = true }

// Counters implements Load.
func (l *WebLoad) Counters() (uint64, uint64, uint64) {
	return l.ops, l.bytes, l.errs
}

// issue requests one page and chains the next.
func (l *WebLoad) issue(c *passthru.HTTPConn) {
	if l.stopped {
		return
	}
	page := l.zipf.Next()
	c.Get(l.Pages.Names[page], func(n int, err error) {
		if err != nil {
			l.errs++
		} else {
			l.ops++
			l.bytes += uint64(n)
		}
		l.issue(c)
	})
}

// FixedWebLoad drives GETs for one fixed page repeatedly — the all-hit web
// micro-benchmark of Figure 6(b), where the request size is the sweep
// variable.
type FixedWebLoad struct {
	Conns []*passthru.HTTPConn
	Page  string

	ops, bytes, errs uint64
	stopped          bool
}

var _ Load = (*FixedWebLoad)(nil)

// Start implements Load.
func (l *FixedWebLoad) Start() {
	for _, c := range l.Conns {
		l.issue(c)
	}
}

// Stop implements Load.
func (l *FixedWebLoad) Stop() { l.stopped = true }

// Counters implements Load.
func (l *FixedWebLoad) Counters() (uint64, uint64, uint64) {
	return l.ops, l.bytes, l.errs
}

func (l *FixedWebLoad) issue(c *passthru.HTTPConn) {
	if l.stopped {
		return
	}
	c.Get(l.Page, func(n int, err error) {
		if err != nil {
			l.errs++
		} else {
			l.ops++
			l.bytes += uint64(n)
		}
		l.issue(c)
	})
}
