package workload

import (
	"strconv"

	"ncache/internal/netbuf"
	"ncache/internal/nfs"
	"ncache/internal/sim"
)

// FileRef names one file of the SFS file set.
type FileRef struct {
	FH   nfs.FH
	Size uint64
}

// SFSConfig parameterizes the SPECsfs-like macro load (§5.3): a 5:1
// read:write mix over regular data, a size distribution dominated by small
// (<16 KB) requests, and a tunable fraction of operations that touch
// regular data at all (Figure 7 sweeps 30%–75%).
type SFSConfig struct {
	// RegularDataPct is the percentage of operations that are data
	// reads/writes; the rest are metadata operations.
	RegularDataPct int
	// Files is the accessed file set (10% of the file system in §5.3).
	Files []FileRef
	// ScratchDir receives create/remove churn.
	ScratchDir  nfs.FH
	Concurrency int
	Seed        uint64
	// WriteMixPct is the percentage of regular-data operations that are
	// writes (0 = the SPECsfs default 5:1 read:write mix). The write-back
	// experiments sweep write-heavy mixes through here.
	WriteMixPct int
}

// sfsSizes is the request-size distribution: small requests dominate, as in
// the SPECsfs default the paper uses.
var sfsSizes = []struct {
	size   int
	weight int
}{
	{4096, 60},
	{8192, 25},
	{16384, 10},
	{32768, 5},
}

// SFSLoad is the closed-loop macro workload.
type SFSLoad struct {
	Clients []*nfs.Client
	Cfg     SFSConfig

	rng     *sim.RNG
	ops     uint64
	bytes   uint64
	errs    uint64
	stopped bool
	scratch uint64
}

var _ Load = (*SFSLoad)(nil)

// Start implements Load.
func (l *SFSLoad) Start() {
	if l.Cfg.Concurrency <= 0 {
		l.Cfg.Concurrency = 4
	}
	l.rng = sim.NewRNG(l.Cfg.Seed + 7)
	for _, c := range l.Clients {
		for w := 0; w < l.Cfg.Concurrency; w++ {
			l.issue(c)
		}
	}
}

// Stop implements Load.
func (l *SFSLoad) Stop() { l.stopped = true }

// Counters implements Load.
func (l *SFSLoad) Counters() (uint64, uint64, uint64) {
	return l.ops, l.bytes, l.errs
}

// pickSize draws a request size from the SFS distribution.
func (l *SFSLoad) pickSize() int {
	total := 0
	for _, s := range sfsSizes {
		total += s.weight
	}
	v := l.rng.Intn(total)
	for _, s := range sfsSizes {
		if v < s.weight {
			return s.size
		}
		v -= s.weight
	}
	return sfsSizes[0].size
}

// pickFile draws a file uniformly from the set.
func (l *SFSLoad) pickFile() FileRef {
	return l.Cfg.Files[l.rng.Intn(len(l.Cfg.Files))]
}

// issue performs one operation from the mix and chains the next.
func (l *SFSLoad) issue(c *nfs.Client) {
	if l.stopped {
		return
	}
	finish := func(n int, err error) {
		if err != nil {
			l.errs++
		} else {
			l.ops++
			l.bytes += uint64(n)
		}
		l.issue(c)
	}
	if l.rng.Intn(100) < l.Cfg.RegularDataPct {
		// Regular data: 5:1 read:write.
		f := l.pickFile()
		size := l.pickSize()
		blocks := f.Size / uint64(size)
		if blocks == 0 {
			blocks = 1
		}
		off := uint64(l.rng.Int63n(int64(blocks))) * uint64(size)
		isRead := l.rng.Intn(6) < 5
		if l.Cfg.WriteMixPct > 0 {
			// One extra draw, only on the non-default mix — the default
			// stream stays bit-identical to the seed replays.
			isRead = l.rng.Intn(100) >= l.Cfg.WriteMixPct
		}
		if isRead {
			c.Read(f.FH, off, size, func(data *netbuf.Chain, _ nfs.Attr, err error) {
				n := 0
				if data != nil {
					n = data.Len()
					data.Release()
				}
				finish(n, err)
			})
			return
		}
		c.Write(f.FH, off, junkChain(c, size), func(n int, _ nfs.Attr, err error) {
			finish(n, err)
		})
		return
	}
	// Metadata: getattr / lookup / readdir / create+remove.
	switch v := l.rng.Intn(100); {
	case v < 45:
		f := l.pickFile()
		c.Getattr(f.FH, func(_ nfs.Attr, err error) { finish(0, err) })
	case v < 80:
		c.Lookup(l.Cfg.ScratchDir, "nonexistent-probe", func(_ nfs.FH, _ nfs.Attr, err error) {
			// ENOENT is the expected, successful outcome of the probe.
			if _, isOp := err.(*nfs.OpError); isOp {
				err = nil
			}
			finish(0, err)
		})
	case v < 90:
		c.Readdir(l.Cfg.ScratchDir, func(_ []string, err error) { finish(0, err) })
	default:
		l.scratch++
		name := "sfs-tmp-" + strconv.FormatUint(l.scratch, 36)
		c.Create(l.Cfg.ScratchDir, name, func(fh nfs.FH, _ nfs.Attr, err error) {
			if err != nil {
				finish(0, err)
				return
			}
			l.ops++ // the create itself
			c.Remove(l.Cfg.ScratchDir, name, func(err error) { finish(0, err) })
		})
	}
}
