package workload

import (
	"testing"

	"ncache/internal/extfs"
	"ncache/internal/nfs"
	"ncache/internal/passthru"
	"ncache/internal/sim"
)

// loadRig builds a small cluster with one file for load-driver tests.
func loadRig(t *testing.T) (*passthru.Cluster, nfs.FH, extfs.FileSpec) {
	t.Helper()
	cl, err := passthru.NewCluster(passthru.ClusterConfig{
		Mode:          passthru.NCache,
		NumClients:    2,
		BlocksPerDisk: 8 * 1024,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	fmtr, err := extfs.Format(cl.Storage.Array, 256)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := fmtr.AddFile("load.dat", 2<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := fmtr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	var fh nfs.FH
	got := false
	cl.Clients[0].NFS.Lookup(nfs.RootFH(), "load.dat", func(h nfs.FH, _ nfs.Attr, err error) {
		if err != nil {
			t.Fatalf("Lookup: %v", err)
		}
		fh, got = h, true
	})
	if err := cl.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("lookup incomplete")
	}
	return cl, fh, spec
}

func runWindow(t *testing.T, cl *passthru.Cluster, load Load) Measurement {
	t.Helper()
	runner := &Runner{Eng: cl.Eng, Warmup: 10 * sim.Millisecond, Window: 50 * sim.Millisecond}
	m, err := runner.Run(load, nil, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return m
}

func TestNFSReadLoadSequentialAndHot(t *testing.T) {
	for _, pattern := range []AccessPattern{Sequential, HotSet} {
		cl, fh, spec := loadRig(t)
		load := &NFSReadLoad{
			Clients:     []*nfs.Client{cl.Clients[0].NFS, cl.Clients[1].NFS},
			FH:          fh,
			FileSize:    spec.Size,
			RequestSize: 16 * 1024,
			Pattern:     pattern,
			Concurrency: 4,
		}
		m := runWindow(t, cl, load)
		if m.Errors != 0 {
			t.Fatalf("pattern %d: %d errors", pattern, m.Errors)
		}
		if m.Ops == 0 || m.Bytes != m.Ops*16*1024 {
			t.Fatalf("pattern %d: ops=%d bytes=%d", pattern, m.Ops, m.Bytes)
		}
	}
}

func TestNFSWriteLoad(t *testing.T) {
	cl, fh, spec := loadRig(t)
	load := &NFSWriteLoad{
		Clients:     []*nfs.Client{cl.Clients[0].NFS},
		FH:          fh,
		FileSize:    spec.Size,
		RequestSize: 8 * 1024,
		Concurrency: 4,
	}
	m := runWindow(t, cl, load)
	if m.Errors != 0 || m.Ops == 0 {
		t.Fatalf("ops=%d errors=%d", m.Ops, m.Errors)
	}
	if cl.App.Node.Reqs.WriteOps == 0 {
		t.Fatal("server saw no writes")
	}
}

func TestSFSLoadMix(t *testing.T) {
	cl, fh, spec := loadRig(t)
	load := &SFSLoad{
		Clients: []*nfs.Client{cl.Clients[0].NFS, cl.Clients[1].NFS},
		Cfg: SFSConfig{
			RegularDataPct: 50,
			Files:          []FileRef{{FH: fh, Size: spec.Size}},
			ScratchDir:     nfs.RootFH(),
			Concurrency:    4,
		},
	}
	m := runWindow(t, cl, load)
	if m.Errors != 0 {
		t.Fatalf("%d errors", m.Errors)
	}
	reqs := cl.App.Node.Reqs
	if reqs.ReadOps == 0 || reqs.WriteOps == 0 || reqs.MetaOps == 0 {
		t.Fatalf("mix incomplete: %+v", reqs)
	}
	// 5:1 read:write among data ops (tolerance for sampling).
	ratio := float64(reqs.ReadOps) / float64(reqs.WriteOps)
	if ratio < 3 || ratio > 8 {
		t.Fatalf("read:write ratio = %.1f, want ≈5", ratio)
	}
}

func TestTracePlayerLoopAndCounters(t *testing.T) {
	cl, fh, spec := loadRig(t)
	tr := GenSequentialRead(fh, spec.Size, 32*1024)
	load := &TracePlayer{
		Clients:     []*nfs.Client{cl.Clients[0].NFS},
		Trace:       tr,
		Concurrency: 4,
		Loop:        true,
	}
	m := runWindow(t, cl, load)
	if m.Errors != 0 || m.Ops == 0 {
		t.Fatalf("ops=%d errors=%d", m.Ops, m.Errors)
	}
}

func TestTracePlayerDoneFires(t *testing.T) {
	cl, fh, _ := loadRig(t)
	tr := GenSequentialRead(fh, 256*1024, 32*1024) // 8 ops
	fired := false
	load := &TracePlayer{
		Clients:     []*nfs.Client{cl.Clients[0].NFS},
		Trace:       tr,
		Concurrency: 3,
		Done:        func() { fired = true },
	}
	load.Start()
	if err := cl.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("Done never fired")
	}
	ops, bytes, errs := load.Counters()
	if ops != 8 || errs != 0 || bytes != 8*32*1024 {
		t.Fatalf("ops=%d bytes=%d errs=%d", ops, bytes, errs)
	}
}
