package scsi

import (
	"testing"
	"testing/quick"
)

func TestCDBRoundTrip(t *testing.T) {
	for _, in := range []CDB{
		{Op: OpRead10, LBA: 0, Blocks: 1},
		{Op: OpWrite10, LBA: 0xfffffffe, Blocks: 0xffff},
		{Op: OpReadCapacity10},
		{Op: OpTestUnitReady},
	} {
		wire := in.Encode()
		out, err := DecodeCDB(wire[:])
		if err != nil {
			t.Fatalf("DecodeCDB(%+v): %v", in, err)
		}
		if out != in {
			t.Fatalf("round trip: got %+v, want %+v", out, in)
		}
	}
}

func TestDecodeCDBShort(t *testing.T) {
	if _, err := DecodeCDB(make([]byte, 5)); err == nil {
		t.Fatal("short CDB accepted")
	}
}

func TestReadCapacityRoundTrip(t *testing.T) {
	in := ReadCapacityData{LastLBA: 123456, BlockSize: 4096}
	wire := in.Encode()
	out, err := DecodeReadCapacity(wire[:])
	if err != nil {
		t.Fatalf("DecodeReadCapacity: %v", err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
	if _, err := DecodeReadCapacity(wire[:4]); err == nil {
		t.Fatal("short capacity data accepted")
	}
}

func TestPropertyCDBRoundTrip(t *testing.T) {
	f := func(op uint8, lba uint32, blocks uint16) bool {
		in := CDB{Op: op, LBA: lba, Blocks: blocks}
		wire := in.Encode()
		out, err := DecodeCDB(wire[:])
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
