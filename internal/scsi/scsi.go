// Package scsi implements the block-command subset the iSCSI transport
// carries: READ(10), WRITE(10) and READ CAPACITY(10) command descriptor
// blocks, plus minimal status/sense reporting.
package scsi

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// CDBLen is the length of the 10-byte CDBs used here (padded to 16 on the
// wire by iSCSI).
const CDBLen = 16

// Operation codes.
const (
	OpTestUnitReady  uint8 = 0x00
	OpRead10         uint8 = 0x28
	OpWrite10        uint8 = 0x2a
	OpReadCapacity10 uint8 = 0x25
)

// Status codes.
const (
	StatusGood           uint8 = 0x00
	StatusCheckCondition uint8 = 0x02
)

// Errors returned by the codec.
var (
	ErrShortCDB  = errors.New("scsi: short CDB")
	ErrBadOpcode = errors.New("scsi: unexpected opcode")
)

// CDB is a decoded command descriptor block.
type CDB struct {
	Op  uint8
	LBA uint32
	// Blocks is the transfer length in blocks (READ/WRITE).
	Blocks uint16
}

// Encode serializes the CDB into a 16-byte wire form.
func (c CDB) Encode() [CDBLen]byte {
	var b [CDBLen]byte
	b[0] = c.Op
	binary.BigEndian.PutUint32(b[2:6], c.LBA)
	binary.BigEndian.PutUint16(b[7:9], c.Blocks)
	return b
}

// DecodeCDB parses a wire-form CDB.
func DecodeCDB(p []byte) (CDB, error) {
	if len(p) < 10 {
		return CDB{}, fmt.Errorf("%w: %d bytes", ErrShortCDB, len(p))
	}
	return CDB{
		Op:     p[0],
		LBA:    binary.BigEndian.Uint32(p[2:6]),
		Blocks: binary.BigEndian.Uint16(p[7:9]),
	}, nil
}

// ReadCapacityData is the 8-byte READ CAPACITY(10) response payload.
type ReadCapacityData struct {
	// LastLBA is the address of the last block (NumBlocks-1).
	LastLBA uint32
	// BlockSize is the block length in bytes.
	BlockSize uint32
}

// Encode serializes the capacity data.
func (r ReadCapacityData) Encode() [8]byte {
	var b [8]byte
	binary.BigEndian.PutUint32(b[0:4], r.LastLBA)
	binary.BigEndian.PutUint32(b[4:8], r.BlockSize)
	return b
}

// DecodeReadCapacity parses capacity data.
func DecodeReadCapacity(p []byte) (ReadCapacityData, error) {
	if len(p) < 8 {
		return ReadCapacityData{}, fmt.Errorf("%w: capacity data %d bytes", ErrShortCDB, len(p))
	}
	return ReadCapacityData{
		LastLBA:   binary.BigEndian.Uint32(p[0:4]),
		BlockSize: binary.BigEndian.Uint32(p[4:8]),
	}, nil
}
