package netbuf

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// init honors NCACHE_NETBUF_DEBUG=1: CI runs the test suite once with
// ownership debugging forced on, so double frees and leaks panic with owner
// tags instead of only ticking counters.
func init() {
	if os.Getenv("NCACHE_NETBUF_DEBUG") == "1" {
		debugMode = true
	}
}

// This file holds the explicit-ownership machinery behind the PR 4 contract:
// every Buf and Chain has exactly one owner at a time, ownership transfers
// are explicit (Acquire/Release), and releases recycle descriptors through
// package-local free lists instead of leaving them to the garbage collector.
// Debug mode trades the recycling for poisoning: double frees and
// use-after-free panic with the owner tag instead of silently corrupting a
// recycled descriptor, and pools can report exactly who leaked what.
//
// The descriptor and chain free lists are process-global and therefore
// shared across the sharded engine's worker goroutines; descMu guards
// them. Descriptor identity never affects simulated results (a recycled
// descriptor is indistinguishable from a fresh one), so the free-list
// order being interleaving-dependent is harmless.

// debugMode switches the substrate from recycle-on-release to
// poison-on-release. See SetDebug.
var debugMode bool

// SetDebug enables (or disables) ownership debugging. With debugging on:
//   - releasing an already-released Buf or Chain panics with its owner tag
//     instead of incrementing a double-free counter;
//   - released descriptors are poisoned, never recycled, so a stale
//     reference trips the panic deterministically;
//   - pools track every outstanding buffer so LeakReport / MustBeDrained
//     can name the owners of leaked buffers.
//
// Debug mode changes no simulated behavior, only failure reporting; tests
// and CI run the suite once with it enabled.
func SetDebug(on bool) { debugMode = on }

// DebugEnabled reports whether ownership debugging is on.
func DebugEnabled() bool { return debugMode }

// globalDoubleFrees counts double releases of buffers and chains that have
// no pool to charge them to (standalone buffers, clone descriptors, chains).
var globalDoubleFrees atomic.Uint64

// GlobalDoubleFrees returns the process-wide count of double releases not
// attributable to a pool. Tests assert it stays zero.
func GlobalDoubleFrees() uint64 { return globalDoubleFrees.Load() }

// ResetGlobalDoubleFrees clears the process-wide double-free counter
// (test isolation hook).
func ResetGlobalDoubleFrees() { globalDoubleFrees.Store(0) }

// recordDoubleFree books a Release of an already-free buffer: a panic with
// the owner tag in debug mode, a counter otherwise.
func recordDoubleFree(b *Buf) {
	if debugMode {
		panic(fmt.Sprintf("netbuf: double free of %s (owner %q)", b, b.owner))
	}
	if p := b.pool; p != nil {
		p.mu.Lock()
		p.doubleFrees++
		p.mu.Unlock()
		return
	}
	globalDoubleFrees.Add(1)
}

// recordChainDoubleFree books a Release of an already-released chain.
func recordChainDoubleFree(c *Chain) {
	if debugMode {
		panic(fmt.Sprintf("netbuf: double free of %s", c))
	}
	globalDoubleFrees.Add(1)
}

// descFree recycles Buf descriptors (clone descriptors and standalone
// buffers whose backing is gone). Disabled in debug mode so released
// descriptors stay poisoned.
var (
	descMu   sync.Mutex
	descFree []*Buf
)

// getDesc returns a zeroed descriptor, reusing a released one when possible.
func getDesc() *Buf {
	descMu.Lock()
	if n := len(descFree); n > 0 && !debugMode {
		b := descFree[n-1]
		descFree[n-1] = nil
		descFree = descFree[:n-1]
		descMu.Unlock()
		b.freed = false
		return b
	}
	descMu.Unlock()
	return &Buf{}
}

// putDesc retires a descriptor whose refcount reached zero. In debug mode it
// is poisoned and abandoned to the collector; otherwise it joins the free
// list for the next Clone or New.
func putDesc(b *Buf) {
	b.freed = true
	b.backing = nil
	b.shared = nil
	b.pool = nil
	b.onRecycle = nil
	b.head, b.tail = 0, 0
	b.refs = 0
	if debugMode {
		return
	}
	b.owner = ""
	descMu.Lock()
	descFree = append(descFree, b)
	descMu.Unlock()
}

// chainFree recycles Chain structs (and their grown descriptor slices).
var chainFree []*Chain

// getChain returns an empty chain, reusing a released one when possible.
func getChain() *Chain {
	descMu.Lock()
	if n := len(chainFree); n > 0 && !debugMode {
		c := chainFree[n-1]
		chainFree[n-1] = nil
		chainFree = chainFree[:n-1]
		descMu.Unlock()
		c.freed = false
		return c
	}
	descMu.Unlock()
	return &Chain{}
}

// putChain retires a released chain. In debug mode it stays poisoned so a
// second Release or further use panics instead of corrupting a reused chain.
func putChain(c *Chain) {
	c.freed = true
	c.ckValid = false
	if debugMode {
		return
	}
	descMu.Lock()
	chainFree = append(chainFree, c)
	descMu.Unlock()
}
