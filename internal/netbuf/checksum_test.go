package netbuf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refSum is the straightforward RFC 1071 reference: big-endian 16-bit words
// accumulated in a wide integer, folded, inverted.
func refSum(p []byte) uint16 {
	var sum uint64
	for i := 0; i+1 < len(p); i += 2 {
		sum += uint64(p[i])<<8 | uint64(p[i+1])
	}
	if len(p)%2 == 1 {
		sum += uint64(p[len(p)-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// TestSumMatchesReference checks Sum against the reference on arbitrary
// inputs, including odd lengths.
func TestSumMatchesReference(t *testing.T) {
	f := func(p []byte) bool { return Sum(p) == refSum(p) }
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestSumChainFragmentationInvariance checks the linearity property the
// whole inheritance scheme rests on: the checksum of a chain equals the
// checksum of its flattened bytes no matter how the bytes are fragmented
// (odd-length fragments included).
func TestSumChainFragmentationInvariance(t *testing.T) {
	f := func(p []byte, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewChain()
		for off := 0; off < len(p); {
			n := 1 + rng.Intn(len(p)-off)
			b := New(0, n)
			if err := b.Append(p[off : off+n]); err != nil {
				return false
			}
			c.Append(b)
			off += n
		}
		ok := SumChain(c) == Sum(p)
		c.Release()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestCombineSplitIdentity checks Combine: for any even-length prefix
// split, sum(a) ⊕ sum(b) == sum(a++b), and the partial of a chain equals
// the combination of its parts' partials — the rule sunrpc uses to extend
// an inherited payload checksum across a prepended header.
func TestCombineSplitIdentity(t *testing.T) {
	f := func(p []byte, cut16 uint16) bool {
		cut := 0
		if len(p) > 0 {
			cut = int(cut16) % (len(p) + 1)
		}
		cut &^= 1 // Combine requires the first part to end on an even boundary
		var a, b Partial
		a.AddBytes(p[:cut])
		b.AddBytes(p[cut:])
		combined := Combine(a, b)
		return combined.Checksum() == Sum(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestHeaderPrependInheritance models the transmit path: a cached payload's
// partial is stored once, and each outgoing message folds a fresh
// even-length header in front of it without re-walking the payload.
func TestHeaderPrependInheritance(t *testing.T) {
	f := func(header, payload []byte) bool {
		if len(header)%2 == 1 {
			header = append(append([]byte(nil), header...), 0)
		}
		stored := func() Partial {
			c := ChainFromBytes(payload, 64)
			defer c.Release()
			return PartialOfChain(c)
		}()
		var hs Partial
		hs.AddBytes(header)
		combined := Combine(hs, stored)
		got := combined.Checksum()
		want := Sum(append(append([]byte(nil), header...), payload...))
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestPartialIncrementalOddBytes checks AddBytes handles arbitrary
// odd/even fragment boundaries identically to one contiguous add.
func TestPartialIncrementalOddBytes(t *testing.T) {
	p := make([]byte, 257)
	for i := range p {
		p[i] = byte(i*31 + 7)
	}
	var whole Partial
	whole.AddBytes(p)
	for _, step := range []int{1, 2, 3, 5, 7, 64, 100} {
		var inc Partial
		for off := 0; off < len(p); off += step {
			end := off + step
			if end > len(p) {
				end = len(p)
			}
			inc.AddBytes(p[off:end])
		}
		if inc.Checksum() != whole.Checksum() {
			t.Fatalf("step %d: %#x != %#x", step, inc.Checksum(), whole.Checksum())
		}
	}
}
