package netbuf

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestChainFromBytesSegmentation(t *testing.T) {
	p := make([]byte, 3500)
	for i := range p {
		p[i] = byte(i)
	}
	c := ChainFromBytes(p, 1500)
	if c.NumBufs() != 3 {
		t.Fatalf("NumBufs = %d, want 3", c.NumBufs())
	}
	if c.Len() != 3500 {
		t.Fatalf("Len = %d, want 3500", c.Len())
	}
	if !bytes.Equal(c.Flatten(), p) {
		t.Fatal("Flatten differs from source")
	}
}

func TestChainFromBytesEmpty(t *testing.T) {
	c := ChainFromBytes(nil, 1500)
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0", c.Len())
	}
	if c.NumBufs() != 1 {
		t.Fatalf("NumBufs = %d, want 1 (an empty buffer)", c.NumBufs())
	}
}

func TestChainGatherPartial(t *testing.T) {
	c := ChainFromBytes([]byte("abcdefghij"), 4)
	dst := make([]byte, 6)
	if n := c.Gather(dst); n != 6 {
		t.Fatalf("Gather = %d, want 6", n)
	}
	if string(dst) != "abcdef" {
		t.Fatalf("Gather wrote %q", dst)
	}
}

func TestChainCloneZeroCopy(t *testing.T) {
	c := ChainFromBytes([]byte("shared payload"), 6)
	cl := c.Clone()
	if !cl.Equal(c) {
		t.Fatal("clone payload differs")
	}
	// Mutating the original's backing shows through the clone (aliased).
	c.Bufs()[0].Bytes()[0] = 'S'
	if cl.Flatten()[0] != 'S' {
		t.Fatal("chain clone copied payload instead of aliasing")
	}
	cl.Release()
	c.Release()
}

func TestChainSlice(t *testing.T) {
	src := []byte("0123456789abcdefghij")
	c := ChainFromBytes(src, 7) // bufs: 7,7,6
	for _, tc := range []struct{ off, n int }{
		{0, 20}, {0, 7}, {3, 8}, {7, 7}, {13, 7}, {19, 1}, {5, 0}, {0, 0},
	} {
		s, err := c.Slice(tc.off, tc.n)
		if err != nil {
			t.Fatalf("Slice(%d,%d): %v", tc.off, tc.n, err)
		}
		if got := s.Flatten(); !bytes.Equal(got, src[tc.off:tc.off+tc.n]) {
			t.Fatalf("Slice(%d,%d) = %q, want %q", tc.off, tc.n, got, src[tc.off:tc.off+tc.n])
		}
		s.Release()
	}
}

func TestChainSliceOutOfRange(t *testing.T) {
	c := ChainFromBytes([]byte("abc"), 2)
	if _, err := c.Slice(2, 5); err == nil {
		t.Fatal("out-of-range Slice succeeded")
	}
	if _, err := c.Slice(-1, 1); err == nil {
		t.Fatal("negative-offset Slice succeeded")
	}
}

func TestChainEqualDifferentBoundaries(t *testing.T) {
	a := ChainFromBytes([]byte("hello world!"), 3)
	b := ChainFromBytes([]byte("hello world!"), 5)
	if !a.Equal(b) {
		t.Fatal("chains with same payload, different boundaries not Equal")
	}
	c := ChainFromBytes([]byte("hello world?"), 5)
	if a.Equal(c) {
		t.Fatal("chains with different payload reported Equal")
	}
	d := ChainFromBytes([]byte("hello world"), 5)
	if a.Equal(d) {
		t.Fatal("chains with different length reported Equal")
	}
}

func TestChainPropertySliceMatchesByteSlice(t *testing.T) {
	f := func(payload []byte, seg uint8, off, n uint16) bool {
		s := int(seg)%64 + 1
		c := ChainFromBytes(payload, s)
		o := 0
		if len(payload) > 0 {
			o = int(off) % (len(payload) + 1)
		}
		k := 0
		if len(payload)-o > 0 {
			k = int(n) % (len(payload) - o + 1)
		}
		sl, err := c.Slice(o, k)
		if err != nil {
			return false
		}
		return bytes.Equal(sl.Flatten(), payload[o:o+k])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChainPullHeaderSingleBuf(t *testing.T) {
	c := ChainFromBytes([]byte("HDRpayload"), 1500)
	h, err := c.PullHeader(3)
	if err != nil {
		t.Fatalf("PullHeader: %v", err)
	}
	if string(h) != "HDR" || string(c.Flatten()) != "payload" {
		t.Fatalf("h=%q rest=%q", h, c.Flatten())
	}
}

func TestChainPullHeaderSkipsEmptyLeaders(t *testing.T) {
	empty := New(32, 0)
	c := ChainOf(empty, FromBytes([]byte("abcdef")))
	h, err := c.PullHeader(4)
	if err != nil {
		t.Fatalf("PullHeader: %v", err)
	}
	if string(h) != "abcd" {
		t.Fatalf("h = %q", h)
	}
	if c.NumBufs() != 1 {
		t.Fatalf("empty leader not compacted: %d bufs", c.NumBufs())
	}
}

// A pull that drains its buffer must return an owned copy: releasing the
// drained buffer can send its root back to a pool that another shard's node
// owns, and under the parallel engine that shard may recycle the backing
// array while the caller is still reading the header. (This is how a UDP
// header clone from a fragmented datagram gets corrupted: the pull empties
// the 8-byte clone, the release returns the sender's root to its TxPool,
// and the sender reuses the backing for the next frame's headers.)
func TestChainPullHeaderExactDrainCopies(t *testing.T) {
	p := NewPool("t", 32, 64, 0)
	root, err := p.Get()
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if err := root.Append([]byte("HDRBYTES")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	cl := root.Clone() // the fragment's aliasing descriptor
	root.Release()     // sender's ref gone; the clone keeps the root alive
	c := ChainOf(cl, FromBytes([]byte("rest")))
	h, err := c.PullHeader(8)
	if err != nil {
		t.Fatalf("PullHeader: %v", err)
	}
	// The drained clone (and the root) must have been released...
	if got := p.Outstanding(); got != 0 {
		t.Fatalf("root not recycled: %d outstanding", got)
	}
	// ...and recycling the root must not be able to rewrite the header.
	nb, err := p.Get()
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if err := nb.Append([]byte("XXXXXXXX")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if string(h) != "HDRBYTES" {
		t.Fatalf("header aliases recycled backing: %q", h)
	}
	nb.Release()
	c.Release()
}

func TestChainPullHeaderSpansBuffers(t *testing.T) {
	c := ChainFromBytes([]byte("abcdefghij"), 3)
	h, err := c.PullHeader(7)
	if err != nil {
		t.Fatalf("PullHeader: %v", err)
	}
	if string(h) != "abcdefg" || string(c.Flatten()) != "hij" {
		t.Fatalf("h=%q rest=%q", h, c.Flatten())
	}
	if _, err := c.PullHeader(4); err == nil {
		t.Fatal("PullHeader beyond chain length succeeded")
	}
	h2, err := c.PullHeader(3)
	if err != nil || string(h2) != "hij" {
		t.Fatalf("drain: %q, %v", h2, err)
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after drain", c.Len())
	}
}

func TestChecksumKnownVectors(t *testing.T) {
	// RFC 1071 example: the checksum of this sequence is well known.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	var s Partial
	s.AddBytes(data)
	if got := s.Fold(); got != 0xddf2 {
		t.Fatalf("Fold = %#x, want 0xddf2", got)
	}
	if got := Sum(data); got != ^uint16(0xddf2) {
		t.Fatalf("Sum = %#x, want %#x", got, ^uint16(0xddf2))
	}
}

func TestChecksumOddSplit(t *testing.T) {
	data := []byte{1, 2, 3, 4, 5, 6, 7}
	whole := Sum(data)
	for split := 0; split <= len(data); split++ {
		var s Partial
		s.AddBytes(data[:split])
		s.AddBytes(data[split:])
		if s.Checksum() != whole {
			t.Fatalf("split at %d gives %#x, want %#x", split, s.Checksum(), whole)
		}
	}
}

func TestChecksumChainMatchesFlat(t *testing.T) {
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	for _, seg := range []int{1, 3, 64, 1500, 4096} {
		c := ChainFromBytes(payload, seg)
		if SumChain(c) != Sum(payload) {
			t.Fatalf("SumChain(seg=%d) != Sum(flat)", seg)
		}
	}
}

func TestChecksumInheritance(t *testing.T) {
	// The NCache trick: payload partial stored once, folded with any header.
	payload := []byte("cached file block contents, never re-walked")
	hdr := []byte{0x45, 0x00, 0x1, 0x2, 0x3, 0x4} // even length
	pp := PartialOfChain(ChainFromBytes(payload, 8))

	var hs Partial
	hs.AddBytes(hdr)
	combined := Combine(hs, pp)

	var direct Partial
	direct.AddBytes(hdr)
	direct.AddBytes(payload)
	if combined.Checksum() != direct.Checksum() {
		t.Fatalf("inherited checksum %#x != direct %#x", combined.Checksum(), direct.Checksum())
	}
}

func TestChecksumVerifies(t *testing.T) {
	// Appending the checksum makes the total sum fold to 0xffff.
	data := []byte("verify me please")
	ck := Sum(data)
	var s Partial
	s.AddBytes(data)
	s.AddUint16(ck)
	if s.Fold() != 0xffff {
		t.Fatalf("sum+checksum folds to %#x, want 0xffff", s.Fold())
	}
}

func TestChainCachedPartialLifecycle(t *testing.T) {
	payload := []byte("cached checksum payload!")
	c := ChainFromBytes(payload, 8)
	if _, ok := c.CachedPartial(); ok {
		t.Fatal("fresh chain has a cached partial")
	}
	c.SetPartial(PartialOfChain(c))
	p, ok := c.CachedPartial()
	if !ok {
		t.Fatal("partial not recorded")
	}
	if p.Checksum() != Sum(payload) {
		t.Fatal("recorded partial wrong")
	}
	// Mutations invalidate it.
	c.Append(FromBytes([]byte("x")))
	if _, ok := c.CachedPartial(); ok {
		t.Fatal("Append did not invalidate the partial")
	}
	c.SetPartial(PartialOfChain(c))
	if _, err := c.PullHeader(3); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.CachedPartial(); ok {
		t.Fatal("PullHeader did not invalidate the partial")
	}
	c.SetPartial(PartialOfChain(c))
	if _, err := c.PullChain(2); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.CachedPartial(); ok {
		t.Fatal("PullChain did not invalidate the partial")
	}
	c.SetPartial(PartialOfChain(c))
	c.Release()
	if _, ok := c.CachedPartial(); ok {
		t.Fatal("Release did not invalidate the partial")
	}
}

func TestChecksumPropertySplitInvariance(t *testing.T) {
	f := func(data []byte, seg uint8) bool {
		s := int(seg)%32 + 1
		return SumChain(ChainFromBytes(data, s)) == Sum(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
