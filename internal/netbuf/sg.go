package netbuf

import (
	"fmt"
	"io"
)

// This file holds the scatter-gather view primitives: ways to read, slice
// and fill a chain's payload without flattening it. They are what keeps
// payloads crossing protocol layers as buffer descriptors — the only
// physical copies left on the data path are the ones the paper's model
// charges (wire ingress and the disk image boundary).

// Range calls fn for each payload segment overlapping [off, off+n), in
// order, with a slice aliasing the buffer's bytes. fn returns false to stop
// early. No payload bytes are copied and no descriptors are allocated.
func (c *Chain) Range(off, n int, fn func(p []byte) bool) error {
	if off < 0 || n < 0 || off+n > c.Len() {
		return fmt.Errorf("netbuf: range [%d,%d) out of range 0..%d", off, off+n, c.Len())
	}
	pos := 0
	remaining := n
	for _, b := range c.bufs {
		if remaining == 0 {
			break
		}
		blen := b.Len()
		if pos+blen <= off {
			pos += blen
			continue
		}
		start := 0
		if off > pos {
			start = off - pos
		}
		take := blen - start
		if take > remaining {
			take = remaining
		}
		if take > 0 && !fn(b.Bytes()[start:start+take]) {
			return nil
		}
		remaining -= take
		pos += blen
	}
	return nil
}

// GatherRange copies the byte range [off, off+len(dst)) of the chain into
// dst and returns the number of bytes written (short when the chain ends
// first). It is Gather with an offset: a physical copy the caller charges,
// but with no descriptor clones along the way.
func (c *Chain) GatherRange(off int, dst []byte) int {
	if off < 0 || off >= c.Len() || len(dst) == 0 {
		return 0
	}
	n := len(dst)
	if off+n > c.Len() {
		n = c.Len() - off
	}
	got := 0
	_ = c.Range(off, n, func(p []byte) bool {
		got += copy(dst[got:], p)
		return true
	})
	return got
}

// SubChain returns a new chain aliasing the byte range [off, off+n) of c
// using cloned descriptors, without copying payload. It is the primitive
// behind block-aligned substitution when protocol block sizes mismatch
// (§3.5); Slice is a synonym kept for the original call sites.
func (c *Chain) SubChain(off, n int) (*Chain, error) {
	if off < 0 || n < 0 || off+n > c.Len() {
		return nil, fmt.Errorf("netbuf: slice [%d,%d) out of range 0..%d", off, off+n, c.Len())
	}
	out := NewChain()
	remaining := n
	pos := 0
	for _, b := range c.bufs {
		if remaining == 0 {
			break
		}
		blen := b.Len()
		if pos+blen <= off {
			pos += blen
			continue
		}
		start := 0
		if off > pos {
			start = off - pos
		}
		take := blen - start
		if take > remaining {
			take = remaining
		}
		cl := b.Clone()
		if start > 0 {
			if _, err := cl.Pull(start); err != nil {
				cl.Release()
				out.Release()
				return nil, err
			}
		}
		if cl.Len() > take {
			if err := cl.Trim(cl.Len() - take); err != nil {
				cl.Release()
				out.Release()
				return nil, err
			}
		}
		out.Append(cl)
		remaining -= take
		pos += blen
	}
	return out, nil
}

// Scatter copies src into the chain's existing payload windows from the
// front (the inverse of Gather) and returns the number of bytes written —
// short when the chain's payload is smaller than src. The chain's geometry
// is unchanged; its cached checksum is invalidated.
func (c *Chain) Scatter(src []byte) int {
	c.invalidatePartial()
	n := 0
	for _, b := range c.bufs {
		if n >= len(src) {
			break
		}
		n += copy(b.Bytes(), src[n:])
	}
	return n
}

// AppendChain moves every buffer of o to the tail of c, transferring
// ownership, and leaves o empty. It replaces the per-buffer Append loop at
// every layer hand-off (no per-buffer slice growth beyond c's own).
func (c *Chain) AppendChain(o *Chain) {
	if o == nil || len(o.bufs) == 0 {
		return
	}
	c.invalidatePartial()
	c.bufs = append(c.bufs, o.bufs...)
	o.invalidatePartial()
	o.bufs = o.bufs[:0]
}

// Reader returns a non-consuming io.Reader over the chain's payload. The
// chain must not be mutated or released while the reader is in use.
func (c *Chain) Reader() *ChainReader { return &ChainReader{c: c} }

// ChainReader is a cursor over a chain's payload implementing io.Reader.
type ChainReader struct {
	c   *Chain
	buf int // index of the buffer holding the cursor
	off int // byte offset within that buffer's payload
}

// Read copies up to len(p) bytes from the cursor position.
func (r *ChainReader) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	total := 0
	for total < len(p) {
		if r.buf >= len(r.c.bufs) {
			if total > 0 {
				return total, nil
			}
			return 0, io.EOF
		}
		b := r.c.bufs[r.buf].Bytes()
		if r.off >= len(b) {
			r.buf++
			r.off = 0
			continue
		}
		n := copy(p[total:], b[r.off:])
		total += n
		r.off += n
	}
	return total, nil
}

// Writer returns an io.Writer that appends to the chain, drawing buffers
// from pool (or standalone DefaultBufSize buffers when pool is nil). The
// final partial buffer keeps its tailroom, so consecutive writes pack.
func (c *Chain) Writer(pool *Pool) *ChainWriter { return &ChainWriter{c: c, pool: pool} }

// ChainWriter appends bytes to a chain as pooled segments.
type ChainWriter struct {
	c    *Chain
	pool *Pool
}

// Write appends p to the chain, copying into buffer tailroom and taking new
// buffers as needed.
func (w *ChainWriter) Write(p []byte) (int, error) {
	written := 0
	for written < len(p) {
		var tail *Buf
		if n := len(w.c.bufs); n > 0 {
			if b := w.c.bufs[n-1]; b.Tailroom() > 0 && b.shared == nil {
				tail = b
			}
		}
		if tail == nil {
			var err error
			if w.pool != nil {
				tail, err = w.pool.Get()
				if err != nil {
					return written, err
				}
			} else {
				tail = New(DefaultHeadroom, DefaultBufSize)
			}
			w.c.Append(tail)
		}
		take := tail.Tailroom()
		if take > len(p)-written {
			take = len(p) - written
		}
		if err := tail.Append(p[written : written+take]); err != nil {
			return written, err
		}
		written += take
	}
	w.c.invalidatePartial()
	return written, nil
}
