package netbuf

import "fmt"

// Chain is an ordered list of Bufs forming one logical payload — the unit
// NCache stores and substitutes. A 32 KB NFS read reply is a chain of ~22
// MTU-sized buffers exactly as it arrived from the wire.
type Chain struct {
	bufs []*Buf
	// ck caches the chain's Internet-checksum partial when a producer
	// (the NCache substitution hook) already knows it — the paper's
	// checksum inheritance. Any mutation of the chain clears it.
	ck      Partial
	ckValid bool
	// freed marks a released chain: the struct has been recycled (or, in
	// debug mode, poisoned) and must not be touched again.
	freed bool
}

// SetPartial records a precomputed checksum partial for the chain's current
// payload. The caller asserts it equals PartialOfChain(c).
func (c *Chain) SetPartial(p Partial) {
	c.ck = p
	c.ckValid = true
}

// CachedPartial returns the inherited checksum partial, if one is recorded.
func (c *Chain) CachedPartial() (Partial, bool) {
	return c.ck, c.ckValid
}

// invalidatePartial drops the cached checksum on mutation.
func (c *Chain) invalidatePartial() { c.ckValid = false }

// NewChain returns an empty chain. Chains are recycled through Release;
// callers own the returned chain until they hand it to an API documented to
// take ownership.
func NewChain() *Chain { return getChain() }

// ChainOf builds a chain from the given buffers. The chain takes ownership
// of the callers' references.
func ChainOf(bufs ...*Buf) *Chain {
	c := getChain()
	c.bufs = append(c.bufs, bufs...)
	return c
}

// ChainFromBytes splits p into standalone buffers of at most segSize payload
// bytes each, copying the data. It is used to synthesize on-the-wire data in
// tests and workload generators.
func ChainFromBytes(p []byte, segSize int) *Chain {
	if segSize <= 0 {
		segSize = DefaultBufSize
	}
	c := NewChain()
	for off := 0; off < len(p); off += segSize {
		end := off + segSize
		if end > len(p) {
			end = len(p)
		}
		c.Append(FromBytes(p[off:end]))
	}
	if len(p) == 0 {
		c.Append(FromBytes(nil))
	}
	return c
}

// Append adds a buffer to the tail of the chain, taking ownership of the
// caller's reference.
func (c *Chain) Append(b *Buf) {
	c.invalidatePartial()
	c.bufs = append(c.bufs, b)
}

// Bufs returns the underlying buffer slice. Callers must not mutate it.
func (c *Chain) Bufs() []*Buf { return c.bufs }

// NumBufs returns the number of buffers in the chain.
func (c *Chain) NumBufs() int { return len(c.bufs) }

// Len returns the total payload length across all buffers.
func (c *Chain) Len() int {
	n := 0
	for _, b := range c.bufs {
		n += b.Len()
	}
	return n
}

// Gather copies the chain's payload into dst and returns the number of bytes
// written (a physical copy; callers charge CPU time accordingly).
func (c *Chain) Gather(dst []byte) int {
	n := 0
	for _, b := range c.bufs {
		if n >= len(dst) {
			break
		}
		n += copy(dst[n:], b.Bytes())
	}
	return n
}

// Flatten returns the payload as a single newly allocated byte slice
// (physical copy).
func (c *Chain) Flatten() []byte {
	out := make([]byte, c.Len())
	c.Gather(out)
	return out
}

// Clone returns a new chain whose buffers are zero-copy clones of c's — the
// logical-copy transmit path. No payload bytes move.
func (c *Chain) Clone() *Chain {
	nc := getChain()
	for _, b := range c.bufs {
		nc.bufs = append(nc.bufs, b.Clone())
	}
	return nc
}

// SetOwner tags every buffer in the chain with a long-term holder for leak
// reports (clone tags land on the roots, where the pinned memory is).
func (c *Chain) SetOwner(owner string) {
	for _, b := range c.bufs {
		b.SetOwner(owner)
	}
}

// Release drops one reference on every buffer and retires the chain: the
// struct is recycled for the next NewChain, so the caller must not touch c
// afterwards. Releasing a chain twice panics in debug mode and is otherwise
// recorded as a double free.
func (c *Chain) Release() {
	if c.freed {
		recordChainDoubleFree(c)
		return
	}
	c.invalidatePartial()
	for i, b := range c.bufs {
		b.Release()
		c.bufs[i] = nil
	}
	c.bufs = c.bufs[:0]
	putChain(c)
}

// Slice returns a new chain aliasing the byte range [off, off+n) of c using
// cloned descriptors, without copying payload. It is a synonym for SubChain
// (see sg.go), kept for the original call sites.
func (c *Chain) Slice(off, n int) (*Chain, error) {
	return c.SubChain(off, n)
}

// PullHeader removes the first n payload bytes from the chain and returns
// them. Fully consumed buffers (including leading empty header buffers left
// behind by lower layers) are released and removed from the chain. When the
// requested bytes sit in one buffer that the pull does not empty, the
// returned slice aliases it; otherwise they are copied into a fresh slice —
// headers are small, so this never copies payload-scale data. The copy in
// the emptied case is load-bearing: releasing the drained buffer can return
// its root to a pool owned by another node's shard, which may recycle the
// backing array while the caller is still reading the returned header.
func (c *Chain) PullHeader(n int) ([]byte, error) {
	c.invalidatePartial()
	if n < 0 || n > c.Len() {
		return nil, fmt.Errorf("netbuf: pull header %d, chain len %d", n, c.Len())
	}
	c.compact()
	if len(c.bufs) > 0 && c.bufs[0].Len() > n {
		p, err := c.bufs[0].Pull(n)
		if err != nil {
			return nil, err
		}
		return p, nil
	}
	out := make([]byte, n)
	got := 0
	for got < n {
		b := c.bufs[0]
		take := b.Len()
		if take > n-got {
			take = n - got
		}
		p, err := b.Pull(take)
		if err != nil {
			return nil, err
		}
		copy(out[got:], p)
		got += take
		c.compact()
	}
	return out, nil
}

// PullChain removes the first n payload bytes from the chain and returns
// them as a new chain, without copying payload: whole buffers move across,
// and a buffer split by the boundary is cloned with adjusted windows. This
// is the primitive streams (TCP reassembly, iSCSI PDU framing) consume data
// with.
func (c *Chain) PullChain(n int) (*Chain, error) {
	c.invalidatePartial()
	if n < 0 || n > c.Len() {
		return nil, fmt.Errorf("netbuf: pull chain %d, chain len %d", n, c.Len())
	}
	out := NewChain()
	remaining := n
	c.compact()
	for remaining > 0 {
		b := c.bufs[0]
		if b.Len() <= remaining {
			out.Append(b)
			c.bufs[0] = nil
			c.bufs = c.bufs[1:]
			remaining -= b.Len()
		} else {
			cl := b.Clone()
			if err := cl.Trim(cl.Len() - remaining); err != nil {
				cl.Release()
				return nil, err
			}
			out.Append(cl)
			if _, err := b.Pull(remaining); err != nil {
				return nil, err
			}
			remaining = 0
		}
		c.compact()
	}
	return out, nil
}

// compact releases and removes leading zero-length buffers.
func (c *Chain) compact() {
	for len(c.bufs) > 0 && c.bufs[0].Len() == 0 {
		c.bufs[0].Release()
		c.bufs = c.bufs[1:]
	}
}

// Equal reports whether two chains carry identical payload bytes
// (irrespective of buffer boundaries).
func (c *Chain) Equal(o *Chain) bool {
	if c.Len() != o.Len() {
		return false
	}
	// Compare without flattening both: walk in lockstep.
	ci, co := 0, 0
	bi, bo := 0, 0
	for ci < len(c.bufs) && co < len(o.bufs) {
		a := c.bufs[ci].Bytes()
		b := o.bufs[co].Bytes()
		for bi < len(a) && bo < len(b) {
			if a[bi] != b[bo] {
				return false
			}
			bi++
			bo++
		}
		if bi == len(a) {
			ci++
			bi = 0
		}
		if bo == len(b) {
			co++
			bo = 0
		}
	}
	// Skip trailing empty buffers.
	for ci < len(c.bufs) && c.bufs[ci].Len() == bi {
		ci++
		bi = 0
	}
	for co < len(o.bufs) && o.bufs[co].Len() == bo {
		co++
		bo = 0
	}
	return ci == len(c.bufs) && co == len(o.bufs)
}

// String summarizes the chain for debugging.
func (c *Chain) String() string {
	return fmt.Sprintf("Chain{bufs=%d len=%d}", len(c.bufs), c.Len())
}
