package netbuf

// Internet checksum (RFC 1071) over buffers and chains, with the incremental
// combination rules NCache relies on: a cached chain's payload checksum is
// computed once (or inherited from the originator's packets) and folded into
// each outgoing packet header instead of being recomputed per transmission.

// Partial is an un-folded ones'-complement sum that can be combined
// incrementally across buffer fragments.
type Partial struct {
	sum uint64
	// odd tracks byte parity so fragments of odd length combine correctly.
	odd bool
}

// AddBytes folds the bytes of p into the running sum.
func (s *Partial) AddBytes(p []byte) {
	i := 0
	if s.odd && len(p) > 0 {
		// The previous fragment ended mid-word: this byte is the low
		// half of the pending 16-bit word.
		s.sum += uint64(p[0])
		i = 1
		s.odd = false
	}
	for ; i+1 < len(p); i += 2 {
		s.sum += uint64(p[i])<<8 | uint64(p[i+1])
	}
	if i < len(p) {
		s.sum += uint64(p[i]) << 8
		s.odd = true
	}
}

// AddUint16 folds a single big-endian word into the sum. It must only be
// called on an even byte boundary.
func (s *Partial) AddUint16(v uint16) {
	s.sum += uint64(v)
}

// Fold reduces the running sum to a 16-bit ones'-complement checksum
// (not yet inverted).
func (s *Partial) Fold() uint16 {
	v := s.sum
	for v > 0xffff {
		v = (v >> 16) + (v & 0xffff)
	}
	return uint16(v)
}

// Checksum returns the final inverted Internet checksum.
func (s *Partial) Checksum() uint16 { return ^s.Fold() }

// Sum computes the Internet checksum of a flat byte slice.
func Sum(p []byte) uint16 {
	var s Partial
	s.AddBytes(p)
	return s.Checksum()
}

// SumChain computes the Internet checksum across a chain's payload without
// flattening it.
func SumChain(c *Chain) uint16 {
	var s Partial
	for _, b := range c.Bufs() {
		s.AddBytes(b.Bytes())
	}
	return s.Checksum()
}

// PartialOfChain returns the un-folded sum of a chain, suitable for
// inheritance: NCache stores this with each cached entry so the transport
// checksum of an outgoing packet is header-sum + stored payload-sum, never a
// re-walk of payload bytes.
func PartialOfChain(c *Chain) Partial {
	var s Partial
	for _, b := range c.Bufs() {
		s.AddBytes(b.Bytes())
	}
	return s
}

// Combine merges two partial sums where b's data followed a's and a ended on
// an even byte boundary.
func Combine(a, b Partial) Partial {
	return Partial{sum: a.sum + b.sum, odd: b.odd}
}
