// Package netbuf implements the network buffer substrate that everything in
// this repository moves data through: an analogue of Linux sk_buff / BSD
// mbuf. A Buf owns a fixed backing array with reserved headroom so protocol
// layers can prepend headers without copying; a Chain strings Bufs together
// so a multi-kilobyte payload (an NFS read reply, an iSCSI data-in burst)
// lives as a list of MTU-sized buffers — the "network-ready format" the
// NCache paper caches data in.
//
// Bufs are reference counted. Go's garbage collector would reclaim them
// anyway, but the explicit count serves two purposes the paper cares about:
// pool accounting (network buffers are pinned kernel memory; the amount
// allocated to NCache bounds the file-system cache, §4.1) and sharing
// semantics (a cached chain is transmitted by cloning buffer descriptors,
// never by copying payload bytes).
package netbuf

import (
	"errors"
	"fmt"
)

// Default geometry, matching the testbed in the paper: 1500-byte Ethernet
// MTU plus space for Ethernet/IP/UDP-or-TCP headers and a little slack.
const (
	// DefaultHeadroom reserves space for the deepest header stack:
	// Ethernet(14) + IPv4(20) + TCP(20) + RPC/iSCSI framing.
	DefaultHeadroom = 96
	// DefaultBufSize is the payload capacity of a standard receive buffer.
	DefaultBufSize = 1500
)

var (
	// ErrNoHeadroom reports a Push larger than the remaining headroom.
	ErrNoHeadroom = errors.New("netbuf: insufficient headroom")
	// ErrNoTailroom reports a Put larger than the remaining tailroom.
	ErrNoTailroom = errors.New("netbuf: insufficient tailroom")
	// ErrShortBuf reports a Pull or Trim larger than the payload.
	ErrShortBuf = errors.New("netbuf: operation exceeds payload length")
)

// Buf is a single network buffer: a backing array with a movable payload
// window [head, tail).
type Buf struct {
	backing []byte
	head    int
	tail    int
	refs    int32
	pool    *Pool
	// shared marks descriptors that alias another Buf's backing array
	// (created by Clone). Shared descriptors must not move payload bytes
	// in place, only adjust their own window.
	shared *Buf
}

// New allocates a standalone Buf (not pool-managed) with the given payload
// capacity and headroom. Its initial payload is empty.
func New(headroom, capacity int) *Buf {
	if headroom < 0 {
		headroom = 0
	}
	if capacity < 0 {
		capacity = 0
	}
	return &Buf{
		backing: make([]byte, headroom+capacity),
		head:    headroom,
		tail:    headroom,
		refs:    1,
	}
}

// FromBytes allocates a standalone Buf whose payload is a copy of p, with
// DefaultHeadroom of header space.
func FromBytes(p []byte) *Buf {
	b := New(DefaultHeadroom, len(p))
	_ = b.Put(len(p))
	copy(b.Bytes(), p)
	return b
}

// Bytes returns the current payload window. The slice aliases the buffer;
// callers must not retain it across Release.
func (b *Buf) Bytes() []byte { return b.backing[b.head:b.tail] }

// Len returns the payload length in bytes.
func (b *Buf) Len() int { return b.tail - b.head }

// Headroom returns the bytes available for Push.
func (b *Buf) Headroom() int { return b.head }

// Tailroom returns the bytes available for Put.
func (b *Buf) Tailroom() int { return len(b.backing) - b.tail }

// Capacity returns the total backing size, headroom included.
func (b *Buf) Capacity() int { return len(b.backing) }

// Refs returns the current reference count (for tests and pool accounting).
func (b *Buf) Refs() int32 { return b.refs }

// Push grows the payload at the front by n bytes and returns the newly
// exposed region, analogous to skb_push. Protocol layers write their header
// into the returned slice.
func (b *Buf) Push(n int) ([]byte, error) {
	if n < 0 || n > b.head {
		return nil, fmt.Errorf("%w: push %d, headroom %d", ErrNoHeadroom, n, b.head)
	}
	b.head -= n
	return b.backing[b.head : b.head+n], nil
}

// Pull shrinks the payload at the front by n bytes and returns the removed
// region, analogous to skb_pull. Layers use it to strip headers on receive.
func (b *Buf) Pull(n int) ([]byte, error) {
	if n < 0 || n > b.Len() {
		return nil, fmt.Errorf("%w: pull %d, len %d", ErrShortBuf, n, b.Len())
	}
	p := b.backing[b.head : b.head+n]
	b.head += n
	return p, nil
}

// Put grows the payload at the back by n bytes, analogous to skb_put, and
// returns nil on success. The exposed region is Bytes()[Len()-n:].
func (b *Buf) Put(n int) error {
	if n < 0 || n > b.Tailroom() {
		return fmt.Errorf("%w: put %d, tailroom %d", ErrNoTailroom, n, b.Tailroom())
	}
	b.tail += n
	return nil
}

// Trim shrinks the payload at the back by n bytes, analogous to skb_trim.
func (b *Buf) Trim(n int) error {
	if n < 0 || n > b.Len() {
		return fmt.Errorf("%w: trim %d, len %d", ErrShortBuf, n, b.Len())
	}
	b.tail -= n
	return nil
}

// Append copies p into the tailroom, growing the payload. It is a
// convenience for Put+copy.
func (b *Buf) Append(p []byte) error {
	if err := b.Put(len(p)); err != nil {
		return err
	}
	copy(b.backing[b.tail-len(p):b.tail], p)
	return nil
}

// Retain increments the reference count and returns b for chaining.
func (b *Buf) Retain() *Buf {
	b.refs++
	if b.shared != nil {
		b.shared.refs++
	}
	return b
}

// Release decrements the reference count. When the count reaches zero the
// buffer returns to its pool (if any). Releasing an already-freed buffer is
// recorded on the pool as a double-free rather than panicking; tests assert
// the counter stays zero.
func (b *Buf) Release() {
	if b.refs <= 0 {
		if b.pool != nil {
			b.pool.doubleFrees++
		}
		return
	}
	b.refs--
	if b.shared != nil {
		b.shared.Release()
		if b.refs == 0 {
			b.backing = nil
		}
		return
	}
	if b.refs == 0 && b.pool != nil {
		b.pool.put(b)
	}
}

// Clone returns a new descriptor sharing b's backing array, with an
// independent payload window — the zero-copy primitive. The clone holds a
// reference on b; payload bytes are never duplicated. This is what "sending
// a cached block" does: the cached chain stays in NCache while clones of its
// descriptors go down to the driver.
func (b *Buf) Clone() *Buf {
	root := b
	if b.shared != nil {
		root = b.shared
	}
	root.refs++
	return &Buf{
		backing: b.backing,
		head:    b.head,
		tail:    b.tail,
		refs:    1,
		shared:  root,
	}
}

// Copy returns a deep copy of the payload in a fresh standalone buffer with
// the same headroom. It reports the number of payload bytes physically
// copied so callers can charge simulated CPU time.
func (b *Buf) Copy() (*Buf, int) {
	n := b.Len()
	nb := New(b.head, n+b.Tailroom())
	_ = nb.Put(n)
	copy(nb.Bytes(), b.Bytes())
	return nb, n
}

// String summarizes the buffer geometry for debugging.
func (b *Buf) String() string {
	return fmt.Sprintf("Buf{len=%d headroom=%d tailroom=%d refs=%d}",
		b.Len(), b.Headroom(), b.Tailroom(), b.refs)
}
