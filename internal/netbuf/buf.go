// Package netbuf implements the network buffer substrate that everything in
// this repository moves data through: an analogue of Linux sk_buff / BSD
// mbuf. A Buf owns a fixed backing array with reserved headroom so protocol
// layers can prepend headers without copying; a Chain strings Bufs together
// so a multi-kilobyte payload (an NFS read reply, an iSCSI data-in burst)
// lives as a list of MTU-sized buffers — the "network-ready format" the
// NCache paper caches data in.
//
// Bufs are reference counted. Go's garbage collector would reclaim them
// anyway, but the explicit count serves two purposes the paper cares about:
// pool accounting (network buffers are pinned kernel memory; the amount
// allocated to NCache bounds the file-system cache, §4.1) and sharing
// semantics (a cached chain is transmitted by cloning buffer descriptors,
// never by copying payload bytes).
package netbuf

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Default geometry, matching the testbed in the paper: 1500-byte Ethernet
// MTU plus space for Ethernet/IP/UDP-or-TCP headers and a little slack.
const (
	// DefaultHeadroom reserves space for the deepest header stack:
	// Ethernet(14) + IPv4(20) + TCP(20) + RPC/iSCSI framing.
	DefaultHeadroom = 96
	// DefaultBufSize is the payload capacity of a standard receive buffer.
	DefaultBufSize = 1500
)

var (
	// ErrNoHeadroom reports a Push larger than the remaining headroom.
	ErrNoHeadroom = errors.New("netbuf: insufficient headroom")
	// ErrNoTailroom reports a Put larger than the remaining tailroom.
	ErrNoTailroom = errors.New("netbuf: insufficient tailroom")
	// ErrShortBuf reports a Pull or Trim larger than the payload.
	ErrShortBuf = errors.New("netbuf: operation exceeds payload length")
)

// Buf is a single network buffer: a backing array with a movable payload
// window [head, tail).
//
// Ownership contract: a Buf is born with one reference, owned by whoever
// allocated it. Passing a Buf down a call that "takes ownership" transfers
// that reference; retaining a Buf beyond such a call requires Acquire (or
// Clone for an independent window) and a matching Release. Releasing the
// last reference recycles the descriptor immediately — holding a Buf after
// its final Release is a use-after-free, not a harmless stale read.
type Buf struct {
	backing []byte
	head    int
	tail    int
	// refs is manipulated atomically: under the sharded engine, clones of
	// a cached buffer are retained and released from whichever shard the
	// request chain is on, concurrently with the owning shard.
	refs int32
	pool *Pool
	// shared marks descriptors that alias another Buf's backing array
	// (created by Clone). Shared descriptors must not move payload bytes
	// in place, only adjust their own window.
	shared *Buf
	// owner tags the current long-term holder for leak reports ("ncache.lbn",
	// "sunrpc.retransmit", ...). Defaults to the pool name at Get.
	owner string
	// freed marks a retired descriptor; Release checks it so double frees
	// are caught even on descriptors with no pool to charge.
	freed bool
	// onRecycle, when set, fires exactly once as the refcount reaches zero,
	// before the buffer returns to its pool — the RX-ring credit return.
	onRecycle func(*Buf)
}

// New allocates a standalone Buf (not pool-managed) with the given payload
// capacity and headroom. Its initial payload is empty.
func New(headroom, capacity int) *Buf {
	if headroom < 0 {
		headroom = 0
	}
	if capacity < 0 {
		capacity = 0
	}
	b := getDesc()
	b.backing = make([]byte, headroom+capacity)
	b.head = headroom
	b.tail = headroom
	setRefs(b, 1)
	return b
}

// setRefs and loadRefs wrap the atomic refcount accesses; addRefs returns
// the new count.
func setRefs(b *Buf, n int32)       { atomic.StoreInt32(&b.refs, n) }
func loadRefs(b *Buf) int32         { return atomic.LoadInt32(&b.refs) }
func addRefs(b *Buf, d int32) int32 { return atomic.AddInt32(&b.refs, d) }

// FromBytes allocates a standalone Buf whose payload is a copy of p, with
// DefaultHeadroom of header space.
func FromBytes(p []byte) *Buf {
	b := New(DefaultHeadroom, len(p))
	_ = b.Put(len(p))
	copy(b.Bytes(), p)
	return b
}

// Bytes returns the current payload window. The slice aliases the buffer;
// callers must not retain it across Release.
func (b *Buf) Bytes() []byte { return b.backing[b.head:b.tail] }

// Len returns the payload length in bytes.
func (b *Buf) Len() int { return b.tail - b.head }

// Headroom returns the bytes available for Push.
func (b *Buf) Headroom() int { return b.head }

// Tailroom returns the bytes available for Put.
func (b *Buf) Tailroom() int { return len(b.backing) - b.tail }

// Capacity returns the total backing size, headroom included.
func (b *Buf) Capacity() int { return len(b.backing) }

// Refs returns the current reference count (for tests and pool accounting).
func (b *Buf) Refs() int32 { return loadRefs(b) }

// Push grows the payload at the front by n bytes and returns the newly
// exposed region, analogous to skb_push. Protocol layers write their header
// into the returned slice.
func (b *Buf) Push(n int) ([]byte, error) {
	if n < 0 || n > b.head {
		return nil, fmt.Errorf("%w: push %d, headroom %d", ErrNoHeadroom, n, b.head)
	}
	b.head -= n
	return b.backing[b.head : b.head+n], nil
}

// Pull shrinks the payload at the front by n bytes and returns the removed
// region, analogous to skb_pull. Layers use it to strip headers on receive.
func (b *Buf) Pull(n int) ([]byte, error) {
	if n < 0 || n > b.Len() {
		return nil, fmt.Errorf("%w: pull %d, len %d", ErrShortBuf, n, b.Len())
	}
	p := b.backing[b.head : b.head+n]
	b.head += n
	return p, nil
}

// Put grows the payload at the back by n bytes, analogous to skb_put, and
// returns nil on success. The exposed region is Bytes()[Len()-n:].
func (b *Buf) Put(n int) error {
	if n < 0 || n > b.Tailroom() {
		return fmt.Errorf("%w: put %d, tailroom %d", ErrNoTailroom, n, b.Tailroom())
	}
	b.tail += n
	return nil
}

// Trim shrinks the payload at the back by n bytes, analogous to skb_trim.
func (b *Buf) Trim(n int) error {
	if n < 0 || n > b.Len() {
		return fmt.Errorf("%w: trim %d, len %d", ErrShortBuf, n, b.Len())
	}
	b.tail -= n
	return nil
}

// Append copies p into the tailroom, growing the payload. It is a
// convenience for Put+copy.
func (b *Buf) Append(p []byte) error {
	if err := b.Put(len(p)); err != nil {
		return err
	}
	copy(b.backing[b.tail-len(p):b.tail], p)
	return nil
}

// Retain increments the reference count and returns b for chaining.
func (b *Buf) Retain() *Buf {
	addRefs(b, 1)
	if b.shared != nil {
		addRefs(b.shared, 1)
	}
	return b
}

// Acquire takes an additional explicit ownership reference: the caller
// intends to retain b past the current call and promises a matching Release.
// It is Retain under the ownership-contract name; owner (if non-empty) tags
// the retention for leak reports.
func (b *Buf) Acquire(owner string) *Buf {
	if owner != "" {
		b.SetOwner(owner)
	}
	return b.Retain()
}

// SetOwner tags the buffer's long-term holder for leak reports. For clone
// descriptors the tag lands on the root, whose pool tracks the pinned
// memory.
func (b *Buf) SetOwner(owner string) {
	if b.shared != nil {
		b.shared.owner = owner
		return
	}
	b.owner = owner
}

// Owner returns the current owner tag.
func (b *Buf) Owner() string {
	if b.shared != nil {
		return b.shared.owner
	}
	return b.owner
}

// Pool returns the pool that accounts for this buffer (nil for standalone
// buffers and clone descriptors).
func (b *Buf) Pool() *Pool { return b.pool }

// OnRecycle installs a hook invoked exactly once, then cleared, as the
// buffer's refcount reaches zero (before it returns to its pool). The RX
// ring uses it to reclaim descriptor credits. Replaces any previous hook;
// use TakeRecycleHook first when the old hook must still fire.
func (b *Buf) OnRecycle(fn func(*Buf)) { b.onRecycle = fn }

// TakeRecycleHook removes and returns the pending recycle hook, if any.
func (b *Buf) TakeRecycleHook() func(*Buf) {
	f := b.onRecycle
	b.onRecycle = nil
	return f
}

// Shared reports whether b is a clone descriptor aliasing another buffer's
// backing array.
func (b *Buf) Shared() bool { return b.shared != nil }

// Release drops one ownership reference. When the count reaches zero the
// buffer returns to its pool (or its descriptor to the recycle list) — from
// that point the caller must not touch it. Releasing an already-free buffer
// panics in debug mode and is otherwise recorded as a double free; tests
// assert the counters stay zero.
func (b *Buf) Release() {
	if b.freed || loadRefs(b) <= 0 {
		recordDoubleFree(b)
		return
	}
	n := addRefs(b, -1)
	if b.shared != nil {
		root := b.shared
		root.Release()
		if n == 0 {
			putDesc(b)
		}
		return
	}
	if n == 0 {
		if f := b.onRecycle; f != nil {
			b.onRecycle = nil
			f(b)
		}
		if b.pool != nil {
			b.pool.put(b)
			return
		}
		putDesc(b)
	}
}

// Clone returns a new descriptor sharing b's backing array, with an
// independent payload window — the zero-copy primitive. The clone holds a
// reference on b; payload bytes are never duplicated. This is what "sending
// a cached block" does: the cached chain stays in NCache while clones of its
// descriptors go down to the driver. Aliasing via Clone (and the SubChain /
// Slice helpers built on it) is the only sanctioned way to retain a window
// onto data someone else owns.
func (b *Buf) Clone() *Buf {
	root := b
	if b.shared != nil {
		root = b.shared
	}
	addRefs(root, 1)
	cl := getDesc()
	cl.backing = b.backing
	cl.head = b.head
	cl.tail = b.tail
	setRefs(cl, 1)
	cl.shared = root
	return cl
}

// Copy returns a deep copy of the payload in a fresh standalone buffer with
// the same headroom. It reports the number of payload bytes physically
// copied so callers can charge simulated CPU time.
func (b *Buf) Copy() (*Buf, int) {
	n := b.Len()
	nb := New(b.head, n+b.Tailroom())
	_ = nb.Put(n)
	copy(nb.Bytes(), b.Bytes())
	return nb, n
}

// String summarizes the buffer geometry for debugging.
func (b *Buf) String() string {
	return fmt.Sprintf("Buf{len=%d headroom=%d tailroom=%d refs=%d}",
		b.Len(), b.Headroom(), b.Tailroom(), loadRefs(b))
}
