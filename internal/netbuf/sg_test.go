package netbuf

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

// chainFrom builds a chain over payload fragmented at the given cut points,
// exercising arbitrary buffer boundaries (including empty buffers).
func chainFrom(payload []byte, cuts []int) *Chain {
	c := NewChain()
	prev := 0
	for _, cut := range cuts {
		if cut < prev {
			cut = prev
		}
		if cut > len(payload) {
			cut = len(payload)
		}
		c.Append(FromBytes(payload[prev:cut]))
		prev = cut
	}
	c.Append(FromBytes(payload[prev:]))
	return c
}

// fragSpec is the quick.Check input: a payload plus fragmentation and a
// slicing window derived from raw seeds.
type fragSpec struct {
	Payload []byte
	Cuts    []uint16
	Off     uint16
	N       uint16
}

// normalize derives an in-range fragmentation and window.
func (f fragSpec) normalize() (payload []byte, cuts []int, off, n int) {
	payload = f.Payload
	cuts = make([]int, 0, len(f.Cuts))
	for _, c := range f.Cuts {
		if len(payload) > 0 {
			cuts = append(cuts, int(c)%(len(payload)+1))
		} else {
			cuts = append(cuts, 0)
		}
	}
	// Cut points must be non-decreasing for chainFrom.
	for i := 1; i < len(cuts); i++ {
		if cuts[i] < cuts[i-1] {
			cuts[i] = cuts[i-1]
		}
	}
	off = 0
	if len(payload) > 0 {
		off = int(f.Off) % (len(payload) + 1)
	}
	n = 0
	if rest := len(payload) - off; rest > 0 {
		n = int(f.N) % (rest + 1)
	}
	return payload, cuts, off, n
}

func TestRangeMatchesFlatReference(t *testing.T) {
	prop := func(f fragSpec) bool {
		payload, cuts, off, n := f.normalize()
		c := chainFrom(payload, cuts)
		defer c.Release()
		var got []byte
		if err := c.Range(off, n, func(p []byte) bool {
			got = append(got, p...)
			return true
		}); err != nil {
			return false
		}
		return bytes.Equal(got, payload[off:off+n])
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSubChainMatchesFlatReference(t *testing.T) {
	prop := func(f fragSpec) bool {
		payload, cuts, off, n := f.normalize()
		c := chainFrom(payload, cuts)
		defer c.Release()
		sub, err := c.SubChain(off, n)
		if err != nil {
			return false
		}
		defer sub.Release()
		if sub.Len() != n {
			return false
		}
		return bytes.Equal(sub.Flatten(), payload[off:off+n])
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGatherRangeMatchesFlatReference(t *testing.T) {
	prop := func(f fragSpec) bool {
		payload, cuts, off, n := f.normalize()
		c := chainFrom(payload, cuts)
		defer c.Release()
		dst := make([]byte, n)
		got := c.GatherRange(off, dst)
		if n > 0 && got != n {
			return false
		}
		return bytes.Equal(dst[:got], payload[off:off+got])
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReaderMatchesFlatReference(t *testing.T) {
	prop := func(f fragSpec, readSize uint8) bool {
		payload, cuts, _, _ := f.normalize()
		c := chainFrom(payload, cuts)
		defer c.Release()
		sz := int(readSize)%7 + 1 // odd read sizes cross buffer boundaries
		var got []byte
		buf := make([]byte, sz)
		r := c.Reader()
		for {
			n, err := r.Read(buf)
			got = append(got, buf[:n]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				return false
			}
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWriterRoundTrips(t *testing.T) {
	prop := func(payload []byte, chunk uint8) bool {
		c := NewChain()
		defer c.Release()
		w := c.Writer(nil)
		sz := int(chunk)%11 + 1
		for off := 0; off < len(payload); off += sz {
			end := off + sz
			if end > len(payload) {
				end = len(payload)
			}
			n, err := w.Write(payload[off:end])
			if err != nil || n != end-off {
				return false
			}
		}
		return bytes.Equal(c.Flatten(), payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWriterPoolBacked(t *testing.T) {
	p := NewPool("w", DefaultHeadroom, 16, 0)
	c := NewChain()
	w := c.Writer(p)
	payload := make([]byte, 100)
	for i := range payload {
		payload[i] = byte(i)
	}
	if n, err := w.Write(payload); err != nil || n != len(payload) {
		t.Fatalf("Write = %d, %v", n, err)
	}
	if !bytes.Equal(c.Flatten(), payload) {
		t.Fatal("pool-backed writer corrupted payload")
	}
	if c.NumBufs() != 7 { // ceil(100/16)
		t.Fatalf("NumBufs = %d, want 7", c.NumBufs())
	}
	c.Release()
	if p.Outstanding() != 0 {
		t.Fatalf("Outstanding = %d after release", p.Outstanding())
	}
}

func TestScatterInverseOfGather(t *testing.T) {
	prop := func(f fragSpec) bool {
		payload, cuts, _, _ := f.normalize()
		c := chainFrom(payload, cuts)
		defer c.Release()
		src := make([]byte, len(payload))
		for i := range src {
			src[i] = byte(255 - i%251)
		}
		if n := c.Scatter(src); n != len(payload) {
			return false
		}
		return bytes.Equal(c.Flatten(), src)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeEmptyChain(t *testing.T) {
	c := NewChain()
	calls := 0
	if err := c.Range(0, 0, func(p []byte) bool { calls++; return true }); err != nil {
		t.Fatalf("Range on empty chain: %v", err)
	}
	if calls != 0 {
		t.Fatal("Range on empty chain invoked fn")
	}
	if err := c.Range(0, 1, func(p []byte) bool { return true }); err == nil {
		t.Fatal("Range past end did not error")
	}
	sub, err := c.SubChain(0, 0)
	if err != nil {
		t.Fatalf("SubChain(0,0) on empty chain: %v", err)
	}
	if sub.Len() != 0 {
		t.Fatal("empty SubChain not empty")
	}
}

func TestAppendChainMovesOwnership(t *testing.T) {
	a := ChainFromBytes([]byte("hello "), 4)
	b := ChainFromBytes([]byte("world"), 3)
	nb := b.NumBufs()
	a.AppendChain(b)
	if b.NumBufs() != 0 {
		t.Fatalf("source chain kept %d bufs", b.NumBufs())
	}
	if a.NumBufs() != 2+nb {
		t.Fatalf("dest has %d bufs", a.NumBufs())
	}
	if string(a.Flatten()) != "hello world" {
		t.Fatalf("payload = %q", a.Flatten())
	}
	a.Release()
}

func TestAppendChainInvalidatesPartial(t *testing.T) {
	a := ChainFromBytes([]byte{1, 2}, 4)
	a.SetPartial(PartialOfChain(a))
	b := ChainFromBytes([]byte{3, 4}, 4)
	a.AppendChain(b)
	if _, ok := a.CachedPartial(); ok {
		t.Fatal("AppendChain kept a stale checksum partial")
	}
	a.Release()
}

func BenchmarkGatherRange4K(b *testing.B) {
	payload := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(payload)
	c := ChainFromBytes(payload, DefaultBufSize)
	defer c.Release()
	dst := make([]byte, 4096)
	b.ReportAllocs()
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.GatherRange(0, dst)
	}
}

func BenchmarkSubChain32K(b *testing.B) {
	payload := make([]byte, 32*1024)
	c := ChainFromBytes(payload, DefaultBufSize)
	defer c.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sub, err := c.SubChain(4096, 4096)
		if err != nil {
			b.Fatal(err)
		}
		sub.Release()
	}
}

func BenchmarkPoolGetChain32K(b *testing.B) {
	p := NewPool("bench", DefaultHeadroom, DefaultBufSize, 0)
	payload := make([]byte, 32*1024)
	b.ReportAllocs()
	b.SetBytes(32 * 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := p.GetChain(payload)
		if err != nil {
			b.Fatal(err)
		}
		c.Release()
	}
}

func BenchmarkRange32K(b *testing.B) {
	payload := make([]byte, 32*1024)
	c := ChainFromBytes(payload, DefaultBufSize)
	defer c.Release()
	b.ReportAllocs()
	b.SetBytes(32 * 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		_ = c.Range(0, c.Len(), func(p []byte) bool {
			total += len(p)
			return true
		})
		if total != 32*1024 {
			b.Fatal("short range")
		}
	}
}
