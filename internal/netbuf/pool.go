package netbuf

import (
	"fmt"
	"sync"
)

// Pool is a bounded allocator of fixed-geometry network buffers, standing in
// for the device driver's receive-ring allocation in the paper. Buffers from
// a pool represent pinned physical memory: the total the pool may hand out
// is capped, and the amount outstanding is what NCache "occupies" — the
// mechanism §4.1 uses to squeeze the file-system buffer cache.
type Pool struct {
	name     string
	headroom int
	bufSize  int
	capacity int // max outstanding buffers; 0 = unlimited

	// mu guards the free list and counters. Pools are shared-mutable state
	// under the sharded engine: registered-receive adoption and lend-back
	// move buffers between pools owned by different shards mid-epoch. The
	// critical sections are a few loads and stores; the payload zeroing in
	// Get happens outside the lock. Order-sensitive counters (peak, allocs,
	// reuses) are diagnostics only and are never captured by seed-replay
	// experiments.
	mu sync.Mutex

	free        []*Buf
	outstanding int
	allocs      uint64
	reuses      uint64
	doubleFrees uint64
	peak        int
	adopted     uint64
	lent        uint64
	// live tracks every outstanding buffer in debug mode so leaks can be
	// attributed to their owner tags.
	live map[*Buf]struct{}
}

// NewPool returns a pool that dispenses buffers with the given headroom and
// payload capacity, with at most capacity buffers outstanding (0 means
// unlimited).
func NewPool(name string, headroom, bufSize, capacity int) *Pool {
	if headroom < 0 {
		headroom = 0
	}
	if bufSize <= 0 {
		bufSize = DefaultBufSize
	}
	return &Pool{name: name, headroom: headroom, bufSize: bufSize, capacity: capacity}
}

// ErrPoolExhausted reports that the pool's pinned-memory budget is spent.
type ErrPoolExhausted struct {
	Pool string
	Cap  int
}

func (e *ErrPoolExhausted) Error() string {
	return fmt.Sprintf("netbuf: pool %q exhausted (capacity %d buffers)", e.Pool, e.Cap)
}

// Get returns an empty buffer (payload window at the headroom mark), or an
// *ErrPoolExhausted when the budget is spent.
func (p *Pool) Get() (*Buf, error) {
	p.mu.Lock()
	if p.capacity > 0 && p.outstanding >= p.capacity {
		p.mu.Unlock()
		return nil, &ErrPoolExhausted{Pool: p.name, Cap: p.capacity}
	}
	p.outstanding++
	if p.outstanding > p.peak {
		p.peak = p.outstanding
	}
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.reuses++
		p.track(b)
		p.mu.Unlock()
		b.head = p.headroom
		b.tail = p.headroom
		setRefs(b, 1)
		b.owner = p.name
		// Zero the whole backing array: a recycled buffer must never
		// expose its previous owner's bytes (requests are isolated), and
		// a pooled buffer then looks exactly like a fresh allocation.
		clear(b.backing)
		return b, nil
	}
	p.allocs++
	p.mu.Unlock()
	b := New(p.headroom, p.bufSize)
	b.pool = p
	b.owner = p.name
	p.mu.Lock()
	p.track(b)
	p.mu.Unlock()
	return b, nil
}

// track records an outstanding buffer for debug-mode leak attribution.
func (p *Pool) track(b *Buf) {
	if !debugMode {
		return
	}
	if p.live == nil {
		p.live = make(map[*Buf]struct{})
	}
	p.live[b] = struct{}{}
}

// untrack forgets a buffer that returned to the free list or left the pool.
func (p *Pool) untrack(b *Buf) {
	if p.live != nil {
		delete(p.live, b)
	}
}

// GetData returns a buffer pre-filled with a copy of payload. payload must
// fit in the pool's buffer size.
func (p *Pool) GetData(payload []byte) (*Buf, error) {
	if len(payload) > p.bufSize {
		return nil, fmt.Errorf("netbuf: payload %d exceeds pool buf size %d", len(payload), p.bufSize)
	}
	b, err := p.Get()
	if err != nil {
		return nil, err
	}
	if err := b.Append(payload); err != nil {
		b.Release()
		return nil, err
	}
	return b, nil
}

// GetChain returns a chain of pooled buffers carrying a copy of payload,
// segmented at the pool's buffer size — the pooled counterpart of
// ChainFromBytes for the hot path (one physical copy, no allocations in
// steady state). An empty payload yields a chain with one empty buffer,
// matching ChainFromBytes.
func (p *Pool) GetChain(payload []byte) (*Chain, error) {
	c := NewChain()
	for off := 0; off < len(payload); off += p.bufSize {
		end := off + p.bufSize
		if end > len(payload) {
			end = len(payload)
		}
		b, err := p.GetData(payload[off:end])
		if err != nil {
			c.Release()
			return nil, err
		}
		c.Append(b)
	}
	if len(payload) == 0 {
		b, err := p.Get()
		if err != nil {
			c.Release()
			return nil, err
		}
		c.Append(b)
	}
	return c, nil
}

// GetZeroChain returns a chain of pooled buffers holding n zero bytes
// (pooled buffers are zeroed on reuse, so no bytes are touched here beyond
// window bookkeeping).
func (p *Pool) GetZeroChain(n int) (*Chain, error) {
	c := NewChain()
	for n > 0 {
		take := n
		if take > p.bufSize {
			take = p.bufSize
		}
		b, err := p.Get()
		if err != nil {
			c.Release()
			return nil, err
		}
		_ = b.Put(take)
		c.Append(b)
		n -= take
	}
	return c, nil
}

// put returns a buffer to the free list. Called from Buf.Release.
func (p *Pool) put(b *Buf) {
	p.mu.Lock()
	p.outstanding--
	p.untrack(b)
	p.free = append(p.free, b)
	p.mu.Unlock()
}

// Adopt re-homes an unshared pool-owned buffer into p: the buffer's
// outstanding accounting moves from its current pool to p without touching
// payload bytes. This is the simulated receive DMA — the frame a sender
// clocked onto the wire materializes in the receiver's registered buffer,
// which in the shared-memory simulation is the same physical buffer under
// new ownership. Adoption requires matching geometry (the registered buffer
// the frame "landed in" has the adopting pool's shape) and an unshared
// descriptor (a clone's backing belongs to whoever holds the root — cached
// data transmitted by reference stays pinned at the cache). It returns false,
// changing nothing, when the buffer is not adoptable.
func (p *Pool) Adopt(b *Buf) bool {
	src := b.pool
	if src == nil || src == p || b.shared != nil || loadRefs(b) <= 0 || b.freed {
		return false
	}
	if len(b.backing) != p.headroom+p.bufSize {
		return false
	}
	// Two pools, two phases, never both locks at once: the caller holds
	// the buffer exclusively, so the transient where it is charged to
	// neither pool is invisible to anyone else.
	src.mu.Lock()
	src.outstanding--
	src.untrack(b)
	src.mu.Unlock()
	b.pool = p
	b.owner = p.name
	p.mu.Lock()
	p.outstanding++
	if p.outstanding > p.peak {
		p.peak = p.outstanding
	}
	p.adopted++
	p.track(b)
	p.mu.Unlock()
	return true
}

// Lend moves one free same-geometry buffer from p into dst's free list,
// allocating a fresh one when p has none spare — the replacement half of a
// registered-receive exchange: the receiver that adopted a sender's buffer
// immediately reposts an empty one in its place, so both pools keep
// circulating buffers instead of the sender allocating anew. No-op when the
// geometries differ.
func (p *Pool) Lend(dst *Pool) {
	if dst == nil || dst == p || p.headroom != dst.headroom || p.bufSize != dst.bufSize {
		return
	}
	var b *Buf
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		b = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.lent++
		p.mu.Unlock()
	} else {
		p.allocs++
		p.lent++
		p.mu.Unlock()
		b = New(p.headroom, p.bufSize)
		setRefs(b, 0)
	}
	b.pool = dst
	dst.mu.Lock()
	dst.free = append(dst.free, b)
	dst.mu.Unlock()
}

// LeakReport lists the owner tags of outstanding buffers (debug mode only;
// returns nil otherwise). Tags repeat once per leaked buffer.
func (p *Pool) LeakReport() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.live == nil {
		return nil
	}
	var out []string
	for b := range p.live { // det:unordered — diagnostics only, sorted by callers that compare
		out = append(out, b.owner)
	}
	return out
}

// MustBeDrained panics when buffers are still outstanding, naming their
// owners in debug mode — the leak analogue of the debug-mode double-free
// panic. Tests call it at quiesce points.
func (p *Pool) MustBeDrained() {
	p.mu.Lock()
	n := p.outstanding
	p.mu.Unlock()
	if n == 0 {
		return
	}
	panic(fmt.Sprintf("netbuf: pool %q leaked %d buffers (owners %v)",
		p.name, n, p.LeakReport()))
}

// Outstanding returns the number of buffers currently held by callers.
func (p *Pool) Outstanding() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.outstanding
}

// OutstandingBytes returns the pinned memory represented by outstanding
// buffers, counting full backing arrays as a driver would.
func (p *Pool) OutstandingBytes() int { return p.Outstanding() * (p.headroom + p.bufSize) }

// Peak returns the high-water mark of outstanding buffers.
func (p *Pool) Peak() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peak
}

// Allocs returns the number of fresh backing-array allocations.
func (p *Pool) Allocs() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.allocs
}

// Reuses returns the number of Get calls satisfied from the free list.
func (p *Pool) Reuses() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.reuses
}

// DoubleFrees returns the number of Release calls on already-free buffers.
// Tests assert this stays zero.
func (p *Pool) DoubleFrees() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.doubleFrees
}

// Adopted returns the number of buffers re-homed into this pool by Adopt
// (the registered-receive DMA count).
func (p *Pool) Adopted() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.adopted
}

// Lent returns the number of replacement buffers this pool donated to
// senders via Lend.
func (p *Pool) Lent() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lent
}

// Name returns the pool's diagnostic name.
func (p *Pool) Name() string { return p.name }

// BufSize returns the payload capacity of buffers from this pool.
func (p *Pool) BufSize() int { return p.bufSize }

// Capacity returns the maximum outstanding buffers (0 = unlimited).
func (p *Pool) Capacity() int { return p.capacity }
