package netbuf

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestBufGeometry(t *testing.T) {
	b := New(32, 100)
	if b.Len() != 0 || b.Headroom() != 32 || b.Tailroom() != 100 {
		t.Fatalf("fresh buf geometry wrong: %v", b)
	}
	if b.Capacity() != 132 {
		t.Fatalf("Capacity = %d, want 132", b.Capacity())
	}
}

func TestBufPushPullRoundTrip(t *testing.T) {
	b := FromBytes([]byte("payload"))
	hdr, err := b.Push(4)
	if err != nil {
		t.Fatalf("Push: %v", err)
	}
	copy(hdr, "HDR:")
	if got := string(b.Bytes()); got != "HDR:payload" {
		t.Fatalf("after push: %q", got)
	}
	got, err := b.Pull(4)
	if err != nil {
		t.Fatalf("Pull: %v", err)
	}
	if string(got) != "HDR:" {
		t.Fatalf("Pull returned %q", got)
	}
	if string(b.Bytes()) != "payload" {
		t.Fatalf("after pull: %q", b.Bytes())
	}
}

func TestBufPushBeyondHeadroom(t *testing.T) {
	b := New(8, 10)
	if _, err := b.Push(9); !errors.Is(err, ErrNoHeadroom) {
		t.Fatalf("Push beyond headroom: err = %v, want ErrNoHeadroom", err)
	}
	if _, err := b.Push(-1); !errors.Is(err, ErrNoHeadroom) {
		t.Fatalf("negative Push: err = %v, want ErrNoHeadroom", err)
	}
}

func TestBufPutTrim(t *testing.T) {
	b := New(0, 10)
	if err := b.Put(6); err != nil {
		t.Fatalf("Put: %v", err)
	}
	copy(b.Bytes(), "abcdef")
	if err := b.Trim(2); err != nil {
		t.Fatalf("Trim: %v", err)
	}
	if string(b.Bytes()) != "abcd" {
		t.Fatalf("after trim: %q", b.Bytes())
	}
	if err := b.Put(7); !errors.Is(err, ErrNoTailroom) {
		t.Fatalf("Put beyond tailroom: err = %v", err)
	}
	if err := b.Trim(5); !errors.Is(err, ErrShortBuf) {
		t.Fatalf("Trim beyond len: err = %v", err)
	}
	if _, err := b.Pull(5); !errors.Is(err, ErrShortBuf) {
		t.Fatalf("Pull beyond len: err = %v", err)
	}
}

func TestBufAppend(t *testing.T) {
	b := New(0, 8)
	if err := b.Append([]byte("ab")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := b.Append([]byte("cd")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if string(b.Bytes()) != "abcd" {
		t.Fatalf("Bytes = %q", b.Bytes())
	}
	if err := b.Append(make([]byte, 5)); !errors.Is(err, ErrNoTailroom) {
		t.Fatalf("over-append err = %v", err)
	}
}

func TestBufCloneSharesBytes(t *testing.T) {
	b := FromBytes([]byte("hello world"))
	cl := b.Clone()
	if !bytes.Equal(cl.Bytes(), b.Bytes()) {
		t.Fatal("clone payload differs")
	}
	// Windows are independent.
	if _, err := cl.Pull(6); err != nil {
		t.Fatalf("Pull on clone: %v", err)
	}
	if string(cl.Bytes()) != "world" || string(b.Bytes()) != "hello world" {
		t.Fatal("clone window not independent")
	}
	// Backing is shared: a write through the original shows in the clone.
	b.Bytes()[6] = 'W'
	if string(cl.Bytes()) != "World" {
		t.Fatal("clone does not share backing bytes (copied instead of aliased)")
	}
}

func TestBufCloneOfClone(t *testing.T) {
	b := FromBytes([]byte("abcdef"))
	c1 := b.Clone()
	c2 := c1.Clone()
	if !bytes.Equal(c2.Bytes(), b.Bytes()) {
		t.Fatal("clone-of-clone payload differs")
	}
	c2.Release()
	c1.Release()
	b.Release()
}

func TestBufCopyIsDeep(t *testing.T) {
	b := FromBytes([]byte("original"))
	cp, n := b.Copy()
	if n != 8 {
		t.Fatalf("Copy reported %d bytes, want 8", n)
	}
	b.Bytes()[0] = 'X'
	if string(cp.Bytes()) != "original" {
		t.Fatal("Copy aliased the source")
	}
}

func TestPoolReuseAndAccounting(t *testing.T) {
	p := NewPool("rx", 32, 256, 4)
	var bufs []*Buf
	for i := 0; i < 4; i++ {
		b, err := p.Get()
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		bufs = append(bufs, b)
	}
	if _, err := p.Get(); err == nil {
		t.Fatal("Get beyond capacity succeeded")
	} else {
		var ex *ErrPoolExhausted
		if !errors.As(err, &ex) || ex.Cap != 4 {
			t.Fatalf("want ErrPoolExhausted{Cap:4}, got %v", err)
		}
	}
	if p.Outstanding() != 4 || p.Peak() != 4 {
		t.Fatalf("Outstanding=%d Peak=%d, want 4/4", p.Outstanding(), p.Peak())
	}
	if p.OutstandingBytes() != 4*(32+256) {
		t.Fatalf("OutstandingBytes = %d", p.OutstandingBytes())
	}
	bufs[0].Release()
	if p.Outstanding() != 3 {
		t.Fatalf("Outstanding after release = %d, want 3", p.Outstanding())
	}
	b, err := p.Get()
	if err != nil {
		t.Fatalf("Get after release: %v", err)
	}
	if p.Reuses() != 1 {
		t.Fatalf("Reuses = %d, want 1", p.Reuses())
	}
	if b.Len() != 0 || b.Headroom() != 32 {
		t.Fatal("recycled buffer not reset")
	}
	if p.DoubleFrees() != 0 {
		t.Fatalf("DoubleFrees = %d", p.DoubleFrees())
	}
}

func TestPoolDoubleFreeDetected(t *testing.T) {
	p := NewPool("rx", 0, 64, 0)
	b, err := p.Get()
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	b.Release()
	if DebugEnabled() {
		// Debug mode promotes the counter to a panic naming the owner.
		defer func() {
			if recover() == nil {
				t.Fatal("double free did not panic in debug mode")
			}
		}()
		b.Release()
		return
	}
	b.Release()
	if p.DoubleFrees() != 1 {
		t.Fatalf("DoubleFrees = %d, want 1", p.DoubleFrees())
	}
}

func TestPoolCloneKeepsBufferAlive(t *testing.T) {
	p := NewPool("rx", 0, 64, 0)
	b, err := p.GetData([]byte("cached"))
	if err != nil {
		t.Fatalf("GetData: %v", err)
	}
	cl := b.Clone()
	b.Release() // original reference dropped; clone still holds it
	if p.Outstanding() != 1 {
		t.Fatalf("Outstanding = %d, want 1 while clone alive", p.Outstanding())
	}
	if string(cl.Bytes()) != "cached" {
		t.Fatalf("clone lost payload: %q", cl.Bytes())
	}
	cl.Release()
	if p.Outstanding() != 0 {
		t.Fatalf("Outstanding = %d, want 0 after clone released", p.Outstanding())
	}
	if p.DoubleFrees() != 0 {
		t.Fatalf("DoubleFrees = %d", p.DoubleFrees())
	}
}

func TestPoolRetainRelease(t *testing.T) {
	p := NewPool("rx", 0, 64, 0)
	b, err := p.Get()
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	b.Retain()
	b.Release()
	if p.Outstanding() != 1 {
		t.Fatal("buffer freed while a retained reference exists")
	}
	b.Release()
	if p.Outstanding() != 0 {
		t.Fatal("buffer not freed after final release")
	}
}

func TestPoolGetDataTooLarge(t *testing.T) {
	p := NewPool("rx", 0, 8, 0)
	if _, err := p.GetData(make([]byte, 9)); err == nil {
		t.Fatal("GetData larger than buf size succeeded")
	}
	if p.Outstanding() != 0 {
		t.Fatal("failed GetData leaked a buffer")
	}
}

func TestBufPropertyPushPullInverse(t *testing.T) {
	f := func(payload []byte, n uint8) bool {
		b := FromBytes(payload)
		k := int(n) % (DefaultHeadroom + 1)
		hdr, err := b.Push(k)
		if err != nil {
			return false
		}
		for i := range hdr {
			hdr[i] = byte(i)
		}
		got, err := b.Pull(k)
		if err != nil {
			return false
		}
		for i := range got {
			if got[i] != byte(i) {
				return false
			}
		}
		return bytes.Equal(b.Bytes(), payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
