package netbuf

import "testing"

// TestRecycledBufferExposesNoStaleBytes pins the pool's isolation guarantee:
// a buffer returned to the pool and handed to a new owner must read as zeros
// everywhere the new owner can see — payload window, tailroom exposed by
// Put, and headroom exposed by Push.
func TestRecycledBufferExposesNoStaleBytes(t *testing.T) {
	p := NewPool("zero", 8, 32, 0)

	b, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	// First owner fills every reachable byte with junk.
	if hdr, err := b.Push(8); err != nil {
		t.Fatal(err)
	} else {
		for i := range hdr {
			hdr[i] = 0xAA
		}
	}
	if err := b.Put(32); err != nil {
		t.Fatal(err)
	}
	for i := range b.Bytes() {
		b.Bytes()[i] = 0xBB
	}
	b.Release()
	if p.Reuses() != 0 {
		t.Fatalf("Reuses = %d before any reuse", p.Reuses())
	}

	// Second owner must see pristine zeros through every window.
	nb, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if nb != b {
		t.Fatal("pool did not recycle the buffer (test needs the same object)")
	}
	if p.Reuses() != 1 {
		t.Fatalf("Reuses = %d, want 1", p.Reuses())
	}
	if err := nb.Put(32); err != nil {
		t.Fatal(err)
	}
	for i, v := range nb.Bytes() {
		if v != 0 {
			t.Fatalf("payload[%d] = %#x leaked from previous owner", i, v)
		}
	}
	hdr, err := nb.Push(8)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range hdr {
		if v != 0 {
			t.Fatalf("headroom[%d] = %#x leaked from previous owner", i, v)
		}
	}
	nb.Release()
}

// TestGetZeroChainIsZero checks the zero-fill chain constructor end to end
// through a reuse cycle.
func TestGetZeroChainIsZero(t *testing.T) {
	p := NewPool("zc", 0, 16, 0)
	c, err := p.GetChain([]byte{0xFF, 0xFE, 0xFD, 0xFC, 0xFB})
	if err != nil {
		t.Fatal(err)
	}
	c.Release()
	z, err := p.GetZeroChain(40)
	if err != nil {
		t.Fatal(err)
	}
	if z.Len() != 40 {
		t.Fatalf("Len = %d, want 40", z.Len())
	}
	for i, v := range z.Flatten() {
		if v != 0 {
			t.Fatalf("zero chain byte %d = %#x", i, v)
		}
	}
	z.Release()
	if p.Outstanding() != 0 {
		t.Fatalf("Outstanding = %d", p.Outstanding())
	}
}

// TestGetChainSegmentsLikeChainFromBytes pins the segmentation contract the
// bit-identical results depend on: GetChain at the pool's buffer size must
// produce the same geometry as ChainFromBytes.
func TestGetChainSegmentsLikeChainFromBytes(t *testing.T) {
	p := NewPool("seg", DefaultHeadroom, DefaultBufSize, 0)
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	got, err := p.GetChain(payload)
	if err != nil {
		t.Fatal(err)
	}
	want := ChainFromBytes(payload, DefaultBufSize)
	if got.NumBufs() != want.NumBufs() {
		t.Fatalf("NumBufs = %d, want %d", got.NumBufs(), want.NumBufs())
	}
	for i := range got.Bufs() {
		if got.Bufs()[i].Len() != want.Bufs()[i].Len() {
			t.Fatalf("segment %d: len %d, want %d", i, got.Bufs()[i].Len(), want.Bufs()[i].Len())
		}
	}
	if !got.Equal(want) {
		t.Fatal("payload mismatch")
	}
	got.Release()
	want.Release()

	// Empty payload: one empty buffer, like ChainFromBytes.
	empty, err := p.GetChain(nil)
	if err != nil {
		t.Fatal(err)
	}
	if empty.NumBufs() != 1 || empty.Len() != 0 {
		t.Fatalf("empty GetChain: bufs=%d len=%d", empty.NumBufs(), empty.Len())
	}
	empty.Release()
}
