// Package ncache is a from-scratch reproduction of "Network-Centric Buffer
// Cache Organization" (Peng, Sharma, Chiueh — ICDCS 2005): the NCache
// network-centric buffer cache for pass-through servers, together with
// every substrate it runs on — a deterministic discrete-event simulator, a
// network-buffer subsystem, Ethernet/IPv4/UDP/TCP stacks, Sun RPC and NFS,
// SCSI and iSCSI, a RAID-0 block store, an inode file system, a bounded
// buffer cache, the pass-through NFS and kHTTPd servers in the paper's
// three configurations, the paper's workloads, and a benchmark harness that
// regenerates every table and figure of its evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for measured-vs-paper results. The public surface for
// programmatic use lives under internal/ (this module is a research
// artifact, not a published library API); cmd/ncbench is the experiment
// driver.
package ncache
