// webserver: the kHTTPd scenario — a static web server on networked
// storage serving a Zipf-popular page set, compared across the three
// configurations (§4.3 / Figure 6).
package main

import (
	"fmt"
	"log"

	"ncache/internal/extfs"
	"ncache/internal/passthru"
	"ncache/internal/sim"
	"ncache/internal/workload"
)

func main() {
	pages := workload.BuildPageSet(16 << 20) // 16 MB working set
	fmt.Printf("page set: %d pages, %d MB, mean %d KB\n",
		len(pages.Names), pages.TotalBytes()>>20, workload.WebPageMeanSize()>>10)
	fmt.Printf("%-10s %12s %9s %9s\n", "config", "MB/s", "req/s", "srvCPU%")
	for _, mode := range []passthru.Mode{passthru.Original, passthru.NCache, passthru.Baseline} {
		if err := serve(mode, pages); err != nil {
			log.Fatal(err)
		}
	}
}

func serve(mode passthru.Mode, pages workload.PageSet) error {
	cluster, err := passthru.NewCluster(passthru.ClusterConfig{
		Mode:          mode,
		ServerNICs:    2,
		NumClients:    2,
		BlocksPerDisk: 32 * 1024,
		EnableWeb:     true,
	})
	if err != nil {
		return err
	}
	fmtr, err := extfs.Format(cluster.Storage.Array, 2048)
	if err != nil {
		return err
	}
	for i, name := range pages.Names {
		if _, err := fmtr.AddFile(name, uint64(pages.Sizes[i]), nil); err != nil {
			return err
		}
	}
	if err := fmtr.Flush(); err != nil {
		return err
	}
	if err := cluster.Start(); err != nil {
		return err
	}

	// Four persistent connections per client host, spread across the
	// server's two NICs so the CPU (not one link) is the limit.
	var conns []*passthru.HTTPConn
	for ci, host := range cluster.Clients {
		nic := cluster.App.Node.NICs()[ci%2]
		for k := 0; k < 4; k++ {
			host.DialHTTP(nic.Addr, func(h *passthru.HTTPConn, err error) {
				if err != nil {
					log.Fatal("dial: ", err)
				}
				conns = append(conns, h)
			})
		}
	}
	if err := cluster.Eng.Run(); err != nil {
		return err
	}

	load := &workload.WebLoad{Conns: conns, Pages: pages, ZipfS: 1.0}
	runner := &workload.Runner{
		Eng:    cluster.Eng,
		Warmup: 300 * sim.Millisecond,
		Window: 400 * sim.Millisecond,
	}
	var cpu float64
	m, err := runner.Run(load,
		func() { cluster.App.Node.CPU.ResetStats() },
		func() { cpu = cluster.App.Node.CPU.Utilization() })
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %12.1f %9.0f %9.1f\n",
		mode, m.Throughput()/1e6, m.OpsPerSec(), cpu*100)
	return nil
}
