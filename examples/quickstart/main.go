// Quickstart: build a complete pass-through NFS testbed (storage server,
// NCache-equipped application server, client) in a few lines, read a file
// through the full simulated stack, and confirm that (a) the bytes are
// correct end to end and (b) the server never physically copied the
// payload.
package main

import (
	"bytes"
	"fmt"
	"log"

	"ncache/internal/extfs"
	"ncache/internal/netbuf"
	"ncache/internal/nfs"
	"ncache/internal/passthru"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A cluster is the paper's testbed: one iSCSI storage server with a
	// 4-disk RAID-0, one application server, clients, all on a gigabit
	// switch — in virtual time.
	cluster, err := passthru.NewCluster(passthru.ClusterConfig{
		Mode:          passthru.NCache,
		NumClients:    1,
		BlocksPerDisk: 16 * 1024, // 64 MB array
	})
	if err != nil {
		return err
	}

	// Lay down a file offline (mkfs-style) with known content.
	fmtr, err := extfs.Format(cluster.Storage.Array, 256)
	if err != nil {
		return err
	}
	content := func(off uint64, dst []byte) {
		for i := range dst {
			dst[i] = byte(off + uint64(i))
		}
	}
	if _, err := fmtr.AddFile("hello.dat", 128*1024, content); err != nil {
		return err
	}
	if err := fmtr.Flush(); err != nil {
		return err
	}

	// Bring everything up: iSCSI login, mount, NFS service.
	if err := cluster.Start(); err != nil {
		return err
	}

	// Resolve and read through the real protocol stack.
	client := cluster.Clients[0].NFS
	var fh nfs.FH
	client.Lookup(nfs.RootFH(), "hello.dat", func(h nfs.FH, _ nfs.Attr, err error) {
		if err != nil {
			log.Fatal("lookup: ", err)
		}
		fh = h
	})
	if err := cluster.Eng.Run(); err != nil {
		return err
	}

	var got []byte
	client.Read(fh, 4096, 32*1024, func(data *netbuf.Chain, _ nfs.Attr, err error) {
		if err != nil {
			log.Fatal("read: ", err)
		}
		got = data.Flatten()
		data.Release()
	})
	if err := cluster.Eng.Run(); err != nil {
		return err
	}

	want := make([]byte, 32*1024)
	content(4096, want)
	if !bytes.Equal(got, want) {
		return fmt.Errorf("payload mismatch")
	}

	fmt.Printf("read %d bytes correctly through NFS → buffer cache → iSCSI → RAID-0\n", len(got))
	fmt.Printf("virtual time elapsed: %v\n", cluster.Eng.Now())
	fmt.Printf("server data-path:     %s\n", cluster.App.Node.Copies)
	fmt.Printf("ncache module:        %+v\n", cluster.App.Module.Stats)
	fmt.Println("note: the file payload was never physically copied on the server —")
	fmt.Println("it traveled as wire-buffer references; only 40-byte keys moved.")
	fmt.Println("(the few physical copies counted above are metadata block fills:")
	fmt.Println("inodes and directories are copied normally in every configuration.)")
	return nil
}
