// nfs-passthrough: the paper's headline scenario as a library user would
// run it — the same all-hit NFS workload against all three server
// configurations, showing the throughput gain NCache extracts when the
// server CPU is the bottleneck (Figure 5(b)'s experiment, one point).
package main

import (
	"fmt"
	"log"

	"ncache/internal/extfs"
	"ncache/internal/nfs"
	"ncache/internal/passthru"
	"ncache/internal/sim"
	"ncache/internal/workload"
)

func main() {
	fmt.Println("all-hit NFS read workload, 32 KB requests, two NICs (CPU-bound):")
	fmt.Printf("%-10s %12s %10s %12s\n", "config", "MB/s", "srvCPU%", "phys copies")
	var base float64
	for _, mode := range []passthru.Mode{passthru.Original, passthru.NCache, passthru.Baseline} {
		mbs, cpu, copies, err := measure(mode)
		if err != nil {
			log.Fatal(err)
		}
		note := ""
		if mode == passthru.Original {
			base = mbs
		} else if base > 0 {
			note = fmt.Sprintf("  (%+.0f%% vs original)", (mbs/base-1)*100)
		}
		fmt.Printf("%-10s %12.1f %10.1f %12d%s\n", mode, mbs, cpu*100, copies, note)
	}
}

func measure(mode passthru.Mode) (mbs, cpu float64, copies uint64, err error) {
	cluster, err := passthru.NewCluster(passthru.ClusterConfig{
		Mode:          mode,
		ServerNICs:    2,
		NumClients:    2,
		BlocksPerDisk: 16 * 1024,
		FSCacheBlocks: 8192,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	fmtr, err := extfs.Format(cluster.Storage.Array, 256)
	if err != nil {
		return 0, 0, 0, err
	}
	const hotBytes = 5 << 20
	if _, err := fmtr.AddFile("hot.dat", hotBytes, nil); err != nil {
		return 0, 0, 0, err
	}
	if err := fmtr.Flush(); err != nil {
		return 0, 0, 0, err
	}
	if err := cluster.Start(); err != nil {
		return 0, 0, 0, err
	}

	var fh nfs.FH
	cluster.Clients[0].NFS.Lookup(nfs.RootFH(), "hot.dat", func(h nfs.FH, _ nfs.Attr, err error) {
		fh = h
	})
	if err := cluster.Eng.Run(); err != nil {
		return 0, 0, 0, err
	}

	load := &workload.NFSReadLoad{
		Clients:     []*nfs.Client{cluster.Clients[0].NFS, cluster.Clients[1].NFS},
		FH:          fh,
		FileSize:    hotBytes,
		RequestSize: 32 * 1024,
		Pattern:     workload.HotSet,
		Concurrency: 8,
	}
	runner := &workload.Runner{
		Eng:    cluster.Eng,
		Warmup: 200 * sim.Millisecond, // long enough to warm the hot set
		Window: 400 * sim.Millisecond,
	}
	var before uint64
	m, err := runner.Run(load,
		func() {
			cluster.App.Node.CPU.ResetStats()
			before = cluster.App.Node.Copies.PhysicalOps
		},
		func() {
			cpu = cluster.App.Node.CPU.Utilization()
			copies = cluster.App.Node.Copies.PhysicalOps - before
		})
	if err != nil {
		return 0, 0, 0, err
	}
	return m.Throughput() / 1e6, cpu, copies, nil
}
