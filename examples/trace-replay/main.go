// trace-replay: the Active Trace Player workflow [Zhu et al. 2003] the
// paper's micro-benchmarks are generated with — synthesize an NFS trace
// (here a mixed read/write pattern), replay it closed-loop against the
// server, and report per-operation statistics.
package main

import (
	"fmt"
	"log"

	"ncache/internal/extfs"
	"ncache/internal/nfs"
	"ncache/internal/passthru"
	"ncache/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := passthru.NewCluster(passthru.ClusterConfig{
		Mode:          passthru.NCache,
		NumClients:    1,
		BlocksPerDisk: 16 * 1024,
	})
	if err != nil {
		return err
	}
	fmtr, err := extfs.Format(cluster.Storage.Array, 256)
	if err != nil {
		return err
	}
	spec, err := fmtr.AddFile("trace-target.dat", 8<<20, nil)
	if err != nil {
		return err
	}
	if err := fmtr.Flush(); err != nil {
		return err
	}
	if err := cluster.Start(); err != nil {
		return err
	}

	var fh nfs.FH
	cluster.Clients[0].NFS.Lookup(nfs.RootFH(), spec.Name, func(h nfs.FH, _ nfs.Attr, err error) {
		if err != nil {
			log.Fatal("lookup: ", err)
		}
		fh = h
	})
	if err := cluster.Eng.Run(); err != nil {
		return err
	}

	// Synthesize a 2000-op trace: 80% reads / 20% writes, 8 KB ops,
	// uniformly spread — then replay it to completion with 8 workers.
	trace := workload.GenMixed(fh, spec.Size, 8*1024, 2000, 20, 42)
	fmt.Printf("replaying %d trace ops (8 KB, 20%% writes) against %s server...\n",
		len(trace.Ops), cluster.App.Mode)

	finished := false
	player := &workload.TracePlayer{
		Clients:     []*nfs.Client{cluster.Clients[0].NFS},
		Trace:       trace,
		Concurrency: 8,
		Done:        func() { finished = true },
	}
	start := cluster.Eng.Now()
	player.Start()
	if err := cluster.Eng.Run(); err != nil {
		return err
	}
	if !finished {
		return fmt.Errorf("replay did not finish")
	}
	ops, bytes, errs := player.Counters()
	elapsed := cluster.Eng.Now().Sub(start)

	fmt.Printf("replayed %d ops (%d MB, %d errors) in %v virtual\n",
		ops, bytes>>20, errs, elapsed)
	fmt.Printf("  %.0f ops/s, %.1f MB/s\n",
		float64(ops)/elapsed.Seconds(), float64(bytes)/elapsed.Seconds()/1e6)
	fmt.Printf("  server copies: %s\n", cluster.App.Node.Copies)
	fmt.Printf("  ncache: remaps=%d captures=%d fho-hits=%d\n",
		cluster.App.Module.Stats.Remaps, cluster.App.Module.Stats.Captures,
		cluster.App.Module.Stats.FHOHits)

	// Flush everything and confirm the module remapped the dirty data.
	cluster.App.FS.Sync(func(err error) {
		if err != nil {
			log.Fatal("sync: ", err)
		}
	})
	if err := cluster.Eng.Run(); err != nil {
		return err
	}
	fmt.Printf("after sync: remaps=%d pinned=%d B dirty-blocks=%d\n",
		cluster.App.Module.Stats.Remaps, cluster.App.Module.PinnedBytes(),
		cluster.App.Cache.DirtyCount())
	return nil
}
